"""Tests for dialog identification and state."""

import pytest

from repro.sip.dialog import (
    Dialog,
    DialogId,
    DialogState,
    DialogStore,
    classify_for_dialog,
)
from repro.sip.headers import Via
from repro.sip.message import SipRequest, SipResponse


def make_request(method="INVITE", from_tag="ft", to_tag=None):
    request = SipRequest.build(
        method,
        uri="sip:u@example.com",
        from_addr="sip:caller@example.com",
        to_addr="sip:u@example.com",
        call_id="dlg-1",
        cseq=1,
        from_tag=from_tag,
        to_tag=to_tag,
    )
    request.push_via(Via("uac", branch="z9hG4bKd"))
    return request


class TestDialogId:
    def test_mirrored_ids_equal(self):
        caller = DialogId("c1", "ft", "tt")
        callee = DialogId("c1", "tt", "ft")
        assert caller == callee
        assert hash(caller) == hash(callee)

    def test_different_call_ids_differ(self):
        assert DialogId("c1", "a", "b") != DialogId("c2", "a", "b")

    def test_from_message_orientations(self):
        request = make_request(to_tag="tt")
        local = DialogId.from_message(request, local_is_from=True)
        remote = DialogId.from_message(request, local_is_from=False)
        assert local.local_tag == "ft" and local.remote_tag == "tt"
        assert remote.local_tag == "tt" and remote.remote_tag == "ft"
        assert local == remote  # normalized

    def test_none_tags_handled(self):
        assert DialogId("c", None, "x") == DialogId("c", "x", None)


class TestDialogLifecycle:
    def test_initial_state_early(self):
        dialog = Dialog(DialogId("c", "a", "b"), created_at=1.0)
        assert dialog.state == DialogState.EARLY
        assert dialog.is_active

    def test_confirm_then_terminate(self):
        dialog = Dialog(DialogId("c", "a", "b"))
        dialog.on_confirmed(2.0)
        assert dialog.state == DialogState.CONFIRMED
        dialog.on_terminated(5.0)
        assert dialog.state == DialogState.TERMINATED
        assert not dialog.is_active
        assert dialog.duration() == pytest.approx(3.0)

    def test_confirm_after_terminate_rejected(self):
        dialog = Dialog(DialogId("c", "a", "b"))
        dialog.on_terminated(1.0)
        with pytest.raises(ValueError):
            dialog.on_confirmed(2.0)

    def test_duration_none_until_complete(self):
        dialog = Dialog(DialogId("c", "a", "b"))
        assert dialog.duration() is None


class TestDialogStore:
    def test_create_and_find(self):
        store = DialogStore()
        did = DialogId("c1", "a", "b")
        dialog = store.create(did, now=1.0)
        assert store.find(did) is dialog
        assert store.find(DialogId("c1", "b", "a")) is dialog  # mirrored
        assert store.active_count == 1

    def test_duplicate_create_rejected(self):
        store = DialogStore()
        store.create(DialogId("c1", "a", "b"), 0.0)
        with pytest.raises(ValueError):
            store.create(DialogId("c1", "b", "a"), 0.0)

    def test_find_by_call_id(self):
        store = DialogStore()
        dialog = store.create(DialogId("c1", "a", "b"), 0.0)
        assert store.find_by_call_id("c1") is dialog
        assert store.find_by_call_id("nope") is None

    def test_find_for_message(self):
        store = DialogStore()
        request = make_request(to_tag="tt")
        did = DialogId.from_message(request, local_is_from=True)
        dialog = store.create(did, 0.0)
        assert store.find_for_message(request) is dialog

    def test_remove(self):
        store = DialogStore()
        dialog = store.create(DialogId("c1", "a", "b"), 0.0)
        store.remove(dialog)
        assert store.active_count == 0
        assert store.terminated_total == 1
        assert store.find_by_call_id("c1") is None

    def test_counters(self):
        store = DialogStore()
        for index in range(3):
            store.create(DialogId(f"c{index}", "a", "b"), 0.0)
        assert store.created_total == 3
        assert len(store) == 3


class TestClassification:
    def test_dialog_creating_invite(self):
        assert classify_for_dialog(make_request()) == "creates"

    def test_in_dialog_request(self):
        assert classify_for_dialog(make_request("BYE", to_tag="tt")) == "in-dialog"

    def test_other_request(self):
        assert classify_for_dialog(make_request("REGISTER")) == "other"

    def test_response_with_tag_in_dialog(self):
        response = SipResponse.for_request(make_request(), 200, to_tag="t")
        assert classify_for_dialog(response) == "in-dialog"

    def test_response_without_tag_other(self):
        response = SipResponse.for_request(make_request(), 100)
        assert classify_for_dialog(response) == "other"
