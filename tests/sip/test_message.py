"""Tests for the SIP message model."""

import pytest

from repro.sip.headers import SipHeaderError, Via
from repro.sip.message import SipRequest, SipResponse
from repro.sip.uri import parse_uri


def make_invite(**kwargs):
    defaults = dict(
        method="INVITE",
        uri="sip:burdell@cc.gatech.edu",
        from_addr="sip:hal@us.ibm.com",
        to_addr="sip:burdell@cc.gatech.edu",
        call_id="call-1@uac",
        cseq=1,
        from_tag="ft1",
    )
    defaults.update(kwargs)
    return SipRequest.build(**defaults)


class TestHeaderAccess:
    def test_get_set(self):
        req = make_invite()
        req.set("User-Agent", "repro/1.0")
        assert req.get("user-agent") == "repro/1.0"

    def test_get_missing_is_none(self):
        assert make_invite().get("Contact") is None

    def test_set_replaces_all(self):
        req = make_invite()
        req.add("Route", "<sip:p1;lr>")
        req.add("Route", "<sip:p2;lr>")
        req.set("Route", "<sip:p3;lr>")
        assert req.get_all("Route") == ["<sip:p3;lr>"]

    def test_add_at_top(self):
        req = make_invite()
        req.add("Record-Route", "<sip:p1;lr>")
        req.add("Record-Route", "<sip:p2;lr>", at_top=True)
        assert req.get_all("Record-Route") == ["<sip:p2;lr>", "<sip:p1;lr>"]

    def test_remove(self):
        req = make_invite()
        req.add("Route", "<sip:p1;lr>")
        req.add("Route", "<sip:p2;lr>")
        assert req.remove("Route") == 2
        assert not req.has("Route")

    def test_compact_name_resolution(self):
        req = make_invite()
        assert req.get("i") == "call-1@uac"


class TestStructuredViews:
    def test_from_to_cseq(self):
        req = make_invite()
        assert req.from_.uri.user == "hal"
        assert req.from_.tag == "ft1"
        assert req.to.tag is None
        assert req.cseq.number == 1
        assert req.cseq.method == "INVITE"

    def test_missing_headers_raise(self):
        req = SipRequest("OPTIONS", parse_uri("sip:x@y.com"))
        with pytest.raises(SipHeaderError):
            _ = req.from_
        with pytest.raises(SipHeaderError):
            _ = req.cseq
        with pytest.raises(SipHeaderError):
            _ = req.call_id

    def test_lazy_parse_counting(self):
        req = make_invite()
        touches_before = req.parse_touches
        _ = req.from_
        _ = req.from_  # cached: no extra touch
        assert req.parse_touches == touches_before + 1

    def test_cache_invalidation_on_set(self):
        req = make_invite()
        _ = req.from_
        req.set("From", "<sip:other@x.com>;tag=zz")
        assert req.from_.uri.user == "other"


class TestViaStack:
    def test_push_pop_order(self):
        req = make_invite()
        req.push_via(Via("uac", branch="z9hG4bK1"))
        req.push_via(Via("p1", branch="z9hG4bK2"))
        assert req.top_via.host == "p1"
        popped = req.pop_via()
        assert popped.host == "p1"
        assert req.top_via.host == "uac"

    def test_pop_empty(self):
        assert make_invite().pop_via() is None

    def test_vias_listed_top_first(self):
        req = make_invite()
        req.push_via(Via("a", branch="z9hG4bKa"))
        req.push_via(Via("b", branch="z9hG4bKb"))
        assert [v.host for v in req.vias] == ["b", "a"]


class TestTransactionKey:
    def test_key_from_branch(self):
        req = make_invite()
        req.push_via(Via("uac", branch="z9hG4bKq"))
        assert req.transaction_key() == ("z9hG4bKq", "uac", "INVITE")

    def test_ack_maps_to_invite(self):
        req = make_invite(method="ACK")
        req.set("CSeq", "1 ACK")
        req.push_via(Via("uac", branch="z9hG4bKq"))
        assert req.transaction_key()[2] == "INVITE"

    def test_cancel_maps_to_invite(self):
        req = make_invite(method="CANCEL")
        req.set("CSeq", "1 CANCEL")
        req.push_via(Via("uac", branch="z9hG4bKq"))
        assert req.transaction_key()[2] == "INVITE"

    def test_requires_branch(self):
        req = make_invite()
        req.add("Via", "SIP/2.0/UDP uac")
        with pytest.raises(SipHeaderError):
            req.transaction_key()

    def test_bye_distinct_from_invite(self):
        invite = make_invite()
        invite.push_via(Via("uac", branch="z9hG4bKsame"))
        bye = make_invite(method="BYE", cseq=2)
        bye.set("CSeq", "2 BYE")
        bye.push_via(Via("uac", branch="z9hG4bKsame"))
        assert invite.transaction_key() != bye.transaction_key()


class TestCopy:
    def test_copy_is_independent(self):
        req = make_invite()
        clone = req.copy()
        clone.set("Max-Forwards", "10")
        assert req.get("Max-Forwards") == "70"

    def test_copy_preserves_body(self):
        req = make_invite(body="v=0")
        assert req.copy().body == "v=0"


class TestMaxForwards:
    def test_decrement(self):
        req = make_invite()
        assert req.decrement_max_forwards() == 69
        assert req.get("Max-Forwards") == "69"

    def test_missing_raises(self):
        req = make_invite()
        req.remove("Max-Forwards")
        with pytest.raises(SipHeaderError):
            req.decrement_max_forwards()

    def test_garbage_raises(self):
        req = make_invite()
        req.set("Max-Forwards", "many")
        with pytest.raises(SipHeaderError):
            req.decrement_max_forwards()


class TestResponses:
    def test_for_request_copies_identity(self):
        req = make_invite()
        req.push_via(Via("uac", branch="z9hG4bK1"))
        resp = SipResponse.for_request(req, 180, to_tag="tt1")
        assert resp.status == 180
        assert resp.reason == "Ringing"
        assert resp.call_id == req.call_id
        assert resp.cseq == req.cseq
        assert resp.to.tag == "tt1"
        assert resp.top_via.branch == "z9hG4bK1"

    def test_for_request_keeps_existing_to_tag(self):
        req = make_invite(to_tag="existing")
        resp = SipResponse.for_request(req, 200, to_tag="new")
        assert resp.to.tag == "existing"

    def test_record_route_mirrored(self):
        req = make_invite()
        req.add("Record-Route", "<sip:p1;lr>")
        resp = SipResponse.for_request(req, 200)
        assert resp.get_all("Record-Route") == ["<sip:p1;lr>"]

    def test_classification_flags(self):
        assert SipResponse(100).is_provisional
        assert not SipResponse(100).is_final
        assert SipResponse(200).is_success
        assert SipResponse(500).is_final
        assert not SipResponse(500).is_success

    def test_default_reason_phrases(self):
        assert SipResponse(503).reason == "Service Unavailable"
        assert SipResponse(699).reason == "Unknown"

    def test_status_range_validated(self):
        with pytest.raises(ValueError):
            SipResponse(99)


class TestWireFormat:
    def test_request_start_line(self):
        req = make_invite()
        wire = req.to_wire()
        assert wire.startswith("INVITE sip:burdell@cc.gatech.edu SIP/2.0\r\n")
        assert "Content-Length: 0" in wire

    def test_response_start_line(self):
        resp = SipResponse(200)
        assert resp.to_wire().startswith("SIP/2.0 200 OK\r\n")

    def test_body_and_content_length(self):
        req = make_invite(body="v=0\r\n")
        wire = req.to_wire()
        assert wire.endswith("\r\n\r\nv=0\r\n")
        assert f"Content-Length: {len('v=0') + 2}" in wire

    def test_size_bytes_positive(self):
        assert make_invite().size_bytes() > 100
