"""RFC 4475-style torture battery for the wire parser.

RFC 4475 ("SIP Torture Test Messages") collects the inputs that break
real stacks: sloppy but legal whitespace and folding, compact forms,
quoted strings hiding separators, stream keep-alives, and a long tail
of unambiguously-invalid messages that must be *rejected with a parse
error*, never with a stray ``IndexError``/``UnicodeDecodeError``/silent
corruption.

This battery adapts that spirit to the subset grammar in
``repro.sip.parser`` (the cases follow RFC 4475's naming where one
applies, e.g. ``wsinv``, ``escruri``, ``badinv01``).  The contract
pinned here:

- every valid case parses and survives a wire round trip,
- every invalid case raises :class:`SipParseError` (a ``ValueError``),
  with no other exception type escaping,
- bodies are octet-exact under Content-Length (including embedded
  CRLFs and blank lines), and truncation that splits a multi-byte
  UTF-8 character is a parse error, not a codec traceback.
"""

import pytest

from repro.sip.headers import SipHeaderError, Via
from repro.sip.message import SipRequest, SipResponse
from repro.sip.parser import SipParseError, parse_message

# Minimal valid header block shared by many cases.
CORE = (
    "Via: SIP/2.0/UDP uac.example.com;branch=z9hG4bK.t1\r\n"
    "From: <sip:hal@us.ibm.com>;tag=a1\r\n"
    "To: <sip:burdell@cc.gatech.edu>\r\n"
    "Call-ID: torture@uac.example.com\r\n"
    "CSeq: 1 INVITE\r\n"
    "Max-Forwards: 70\r\n"
)


def _invite(extra: str = "", body: str = "", content_length: int = None) -> str:
    cl = len(body.encode("utf-8")) if content_length is None else content_length
    return (
        "INVITE sip:burdell@cc.gatech.edu SIP/2.0\r\n"
        + CORE + extra
        + f"Content-Length: {cl}\r\n\r\n"
        + body
    )


# ---------------------------------------------------------------------------
# Valid-but-hostile messages: must parse AND survive a wire round trip
# ---------------------------------------------------------------------------

def _check_roundtrip(message):
    again = parse_message(message.to_wire())
    # to_wire() adds a Content-Length if the original lacked one, so
    # compare the header lists modulo that header.
    strip = lambda m: [h for h in m.headers if h[0] != "Content-Length"]
    assert strip(again) == strip(message)
    assert again.body == message.body
    assert type(again) is type(message)
    # And a second trip is a fixpoint.
    assert parse_message(again.to_wire()).to_wire() == again.to_wire()
    return again


def test_wsinv_folded_and_tab_whitespace():
    """RFC 4475 3.1.1.1 (wsinv): header folding with spaces and tabs."""
    raw = (
        "INVITE sip:burdell@cc.gatech.edu SIP/2.0\r\n"
        "Via: SIP/2.0/UDP uac.example.com\r\n"
        " ;branch=z9hG4bK.fold\r\n"
        "Subject: first part\r\n"
        "\tsecond\r\n"
        "  third part\r\n"
        + CORE + "\r\n"
    )
    message = parse_message(raw)
    assert message.top_via.params["branch"] == "z9hG4bK.fold"
    assert message.get("Subject") == "first part second third part"
    _check_roundtrip(message)


def test_compact_header_forms():
    """RFC 4475 3.1.1.8 (dblreq spirit): compact names normalize."""
    raw = (
        "INVITE sip:burdell@cc.gatech.edu SIP/2.0\r\n"
        "v: SIP/2.0/UDP uac.example.com;branch=z9hG4bK.c\r\n"
        "f: <sip:hal@us.ibm.com>;tag=a1\r\n"
        "t: <sip:burdell@cc.gatech.edu>\r\n"
        "i: compact@uac\r\n"
        "CSeq: 1 INVITE\r\n"
        "l: 0\r\n\r\n"
    )
    message = parse_message(raw)
    assert message.get("Via") is not None
    assert message.get("Call-ID") == "compact@uac"
    assert message.get("Content-Length") == "0"
    _check_roundtrip(message)


def test_case_insensitive_header_names():
    raw = _invite(extra="cOnTaCt: <sip:hal@uac.example.com>\r\n")
    message = parse_message(raw)
    assert message.get("Contact") == "<sip:hal@uac.example.com>"
    assert message.get("contact") == "<sip:hal@uac.example.com>"


def test_escruri_escaped_characters_in_uri():
    """RFC 4475 3.1.1.4 (escnull/escruri): %-escapes pass through."""
    raw = (
        "INVITE sip:sip%3Auser%40example.com@cc.gatech.edu;other-param=summit"
        " SIP/2.0\r\n" + CORE + "\r\n"
    )
    message = parse_message(raw)
    assert message.uri.user == "sip%3Auser%40example.com"
    assert message.uri.host == "cc.gatech.edu"


def test_leading_crlf_keepalives_ignored():
    """RFC 3261 7.5: leading CRLFs between stream messages are noise."""
    for prefix in ("\r\n", "\r\n\r\n", "\n\n\r\n"):
        message = parse_message(prefix + _invite())
        assert message.method == "INVITE"


def test_lf_only_and_mixed_line_endings():
    """Unix-hostile senders terminate with bare LF; head section must
    normalize while the Content-Length-governed body stays byte-exact."""
    raw = _invite().replace("\r\n", "\n")
    message = parse_message(raw)
    assert message.method == "INVITE"
    mixed = (
        "INVITE sip:burdell@cc.gatech.edu SIP/2.0\n"
        "Via: SIP/2.0/UDP uac.example.com;branch=z9hG4bK.m\r\n"
        "Call-ID: mixed@uac\n\r\n"
    )
    assert parse_message(mixed).get("Call-ID") == "mixed@uac"


def test_multi_value_via_split_into_entries():
    raw = (
        "ACK sip:burdell@cc.gatech.edu SIP/2.0\r\n"
        "Via: SIP/2.0/UDP p1.example.com;branch=z9hG4bK.1,"
        " SIP/2.0/UDP p2.example.com;branch=z9hG4bK.2\r\n"
        "Via: SIP/2.0/UDP uac.example.com;branch=z9hG4bK.3\r\n\r\n"
    )
    message = parse_message(raw)
    vias = message.get_all("Via")
    assert len(vias) == 3
    assert Via.parse(vias[0]).host == "p1.example.com"
    assert Via.parse(vias[2]).host == "uac.example.com"


def test_quoted_string_hides_comma_separator():
    """RFC 4475 3.1.1.6 (intmeth spirit): commas inside quoted display
    names must not split the header value."""
    raw = _invite(
        extra='Contact: "Caesar, Julius" <sip:caesar@example.com>;q=0.9,'
              ' <sip:brutus@example.com>\r\n'
    )
    contacts = parse_message(raw).get_all("Contact")
    assert contacts == [
        '"Caesar, Julius" <sip:caesar@example.com>;q=0.9',
        "<sip:brutus@example.com>",
    ]


def test_empty_header_value_is_preserved():
    message = parse_message(_invite(extra="Subject:\r\n"))
    assert message.get("Subject") == ""


def test_colons_inside_header_values():
    message = parse_message(
        _invite(extra="Date: Sat, 01 Jan 2011 00:00:00 GMT\r\n")
    )
    assert message.get("Date") == "Sat, 01 Jan 2011 00:00:00 GMT"


def test_unknown_method_and_extension_header():
    raw = (
        "NEWMETHOD sip:burdell@cc.gatech.edu SIP/2.0\r\n" + CORE
        + "X-Experimental: yes\r\n\r\n"
    )
    message = parse_message(raw)
    assert isinstance(message, SipRequest)
    assert message.method == "NEWMETHOD"
    assert message.get("X-Experimental") == "yes"


def test_ipv6_reference_in_request_uri():
    message = parse_message(
        "OPTIONS sip:[2001:db8::10]:5060 SIP/2.0\r\n" + CORE + "\r\n"
    )
    assert message.uri.port == 5060


def test_status_line_with_and_without_reason():
    ok = parse_message("SIP/2.0 200 OK\r\n" + CORE + "\r\n")
    assert isinstance(ok, SipResponse)
    assert (ok.status, ok.reason) == (200, "OK")
    multi = parse_message("SIP/2.0 486 Busy Here\r\n" + CORE + "\r\n")
    assert multi.reason == "Busy Here"
    bare = parse_message("SIP/2.0 180\r\n" + CORE + "\r\n")
    assert bare.status == 180


def test_body_with_embedded_crlf_and_blank_lines():
    """The body is a Content-Length-governed octet string: internal
    CRLFs and even blank lines must survive byte-exact."""
    body = "v=0\r\no=core\r\n\r\ns=-\r\n"
    message = parse_message(_invite(body=body))
    assert message.body == body
    _check_roundtrip(message)


def test_body_longer_than_content_length_is_trimmed():
    message = parse_message(_invite(body="abcdef", content_length=2))
    assert message.body == "ab"


def test_multibyte_utf8_body_length_in_octets():
    body = "café"  # 5 octets, 4 characters
    message = parse_message(_invite(body=body))
    assert message.get("Content-Length") == "5"
    assert message.body == body


def test_bytes_input_accepted():
    message = parse_message(_invite().encode("utf-8"))
    assert message.method == "INVITE"


# ---------------------------------------------------------------------------
# Invalid messages: SipParseError and nothing else
# ---------------------------------------------------------------------------

INVALID_WIRES = {
    # RFC 4475 3.3.x spirit: structurally broken start lines.
    "empty_message": "",
    "whitespace_only": "  \r\n \r\n",
    "garbage_binary_line": "\x01\x02\x03\x04\r\n\r\n",
    "badinv_request_line_extra_token":
        "INVITE sip:a@b SIP/2.0 extra\r\n\r\n",
    "badvers_wrong_sip_version":
        "INVITE sip:a@b SIP/7.0\r\n" + CORE + "\r\n",
    "status_line_missing_code": "SIP/2.0\r\n\r\n",
    "status_line_code_not_numeric": "SIP/2.0 abc OK\r\n\r\n",
    "continuation_before_any_header":
        "INVITE sip:a@b SIP/2.0\r\n  orphan continuation\r\n\r\n",
    "header_line_without_colon":
        "INVITE sip:a@b SIP/2.0\r\nVia SIP/2.0/UDP h\r\n\r\n",
    # Request-URI failures must surface as parse errors.
    "uri_without_scheme": "INVITE burdell@cc.gatech.edu SIP/2.0\r\n\r\n",
    "uri_unsupported_scheme": "INVITE tel:+19725552222 SIP/2.0\r\n\r\n",
    "uri_port_out_of_range": "INVITE sip:a@b:99999 SIP/2.0\r\n\r\n",
    "uri_port_not_numeric": "INVITE sip:a@b:port SIP/2.0\r\n\r\n",
    "uri_missing_host": "INVITE sip: SIP/2.0\r\n\r\n",
    # Content-Length abuse (RFC 4475 3.1.2.x).
    "content_length_not_numeric":
        "INVITE sip:a@b SIP/2.0\r\nContent-Length: abc\r\n\r\n",
    "content_length_negative":
        "INVITE sip:a@b SIP/2.0\r\nContent-Length: -5\r\n\r\nsome body",
    "content_length_larger_than_body":
        "INVITE sip:a@b SIP/2.0\r\nContent-Length: 9999\r\n\r\nshort",
    "content_length_splits_utf8_char":
        "INVITE sip:a@b SIP/2.0\r\nContent-Length: 1\r\n\r\né",
    # Undecodable octets.
    "invalid_utf8_bytes": b"\xff\xfeINVITE sip:a@b SIP/2.0\r\n\r\n",
}


@pytest.mark.parametrize("name", sorted(INVALID_WIRES))
def test_invalid_message_raises_parse_error(name):
    with pytest.raises(SipParseError):
        parse_message(INVALID_WIRES[name])


def test_parse_error_is_a_value_error():
    """Callers catch ValueError at the transport boundary; every reject
    path must stay inside that contract."""
    assert issubclass(SipParseError, ValueError)


def test_negative_content_length_does_not_corrupt_body():
    """Regression: Python's negative slicing used to trim octets off the
    *end* of the body instead of rejecting the message."""
    raw = "INVITE sip:a@b SIP/2.0\r\nContent-Length: -2\r\n\r\nabcdef"
    with pytest.raises(SipParseError, match="negative Content-Length"):
        parse_message(raw)


def test_semantic_errors_surface_on_access_not_parse():
    """Messages that are syntactically fine but semantically broken
    (RFC 4475 3.1.2.2 spirit) parse, then raise typed header errors
    when the broken header is interpreted."""
    message = parse_message(
        "INVITE sip:a@b SIP/2.0\r\nCSeq: fourtytwo\r\n\r\n"
    )
    with pytest.raises(SipHeaderError):
        message.cseq
    missing = parse_message("INVITE sip:a@b SIP/2.0\r\nCall-ID: x\r\n\r\n")
    with pytest.raises(SipHeaderError):
        missing.cseq  # absent entirely
    with pytest.raises(SipHeaderError):
        Via.parse("bogus via value")
    with pytest.raises(SipHeaderError):
        Via.parse("SIP/2.0/UDP")  # transport but no sent-by


def test_fuzz_prefixes_never_raise_foreign_exceptions():
    """Feeding every prefix of a valid message (a truncation fuzz) must
    yield either a parsed message or SipParseError -- no IndexError,
    UnicodeDecodeError or similar leaks."""
    wire = _invite(body="v=0\r\n")
    for cut in range(len(wire)):
        try:
            parse_message(wire[:cut])
        except SipParseError:
            pass
