"""Tests for RFC 3261 timer derivation."""

import pytest

from repro.sip.timers import DEFAULT_TIMERS, TimerPolicy


class TestDefaults:
    def test_rfc_values(self):
        t = DEFAULT_TIMERS
        assert t.t1 == 0.5
        assert t.t2 == 4.0
        assert t.t4 == 5.0
        assert t.timer_a == 0.5
        assert t.timer_b == 32.0
        assert t.timer_d == 32.0
        assert t.timer_e == 0.5
        assert t.timer_f == 32.0
        assert t.timer_g == 0.5
        assert t.timer_h == 32.0
        assert t.timer_i == 5.0
        assert t.timer_j == 32.0
        assert t.timer_k == 5.0


class TestScaling:
    def test_derived_from_t1(self):
        t = TimerPolicy(t1=0.1, t2=0.4, t4=0.5)
        assert t.timer_b == pytest.approx(6.4)
        assert t.timer_f == pytest.approx(6.4)
        assert t.timer_d == pytest.approx(6.4)  # t1 < 0.5 branch

    def test_validation(self):
        with pytest.raises(ValueError):
            TimerPolicy(t1=0)
        with pytest.raises(ValueError):
            TimerPolicy(t1=1.0, t2=0.5)
        with pytest.raises(ValueError):
            TimerPolicy(t4=0)


class TestBackoff:
    def test_invite_doubles_unbounded(self):
        t = DEFAULT_TIMERS
        interval = t.timer_a
        expected = [1.0, 2.0, 4.0, 8.0]
        for value in expected:
            interval = t.next_retransmit_interval(interval, invite=True)
            assert interval == pytest.approx(value)

    def test_non_invite_caps_at_t2(self):
        t = DEFAULT_TIMERS
        interval = t.timer_e
        seen = []
        for _ in range(6):
            interval = t.next_retransmit_interval(interval, invite=False)
            seen.append(interval)
        assert seen == [1.0, 2.0, 4.0, 4.0, 4.0, 4.0]
