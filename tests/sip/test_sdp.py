"""Tests for the SDP subset."""

import pytest
from hypothesis import given, strategies as st

from repro.sip.sdp import DEFAULT_CODECS, SdpError, SessionDescription


class TestConstruction:
    def test_offer_defaults(self):
        offer = SessionDescription.offer("10.0.0.5")
        assert offer.address == "10.0.0.5"
        assert offer.codecs == DEFAULT_CODECS

    def test_bad_port_rejected(self):
        with pytest.raises(SdpError):
            SessionDescription(port=0)
        with pytest.raises(SdpError):
            SessionDescription(port=70000)

    def test_answer_picks_first_codec(self):
        offer = SessionDescription.offer("caller", codecs={8: "PCMA/8000",
                                                           0: "PCMU/8000"})
        answer = offer.answer("callee")
        assert list(answer.codecs) == [0]
        assert answer.address == "callee"
        assert answer.session_id == offer.session_id + 1

    def test_answer_requires_codecs(self):
        empty = SessionDescription(codecs={})
        with pytest.raises(SdpError):
            empty.answer("callee")


class TestWireFormat:
    def test_body_shape(self):
        body = SessionDescription.offer("h.example.com").to_body()
        lines = body.strip().split("\r\n")
        assert lines[0] == "v=0"
        assert lines[1].startswith("o=h.example.com ")
        assert any(line.startswith("m=audio ") for line in lines)
        assert any(line.startswith("a=rtpmap:0 PCMU/8000") for line in lines)

    def test_round_trip(self):
        original = SessionDescription.offer("host.example", port=50000)
        reparsed = SessionDescription.parse(original.to_body())
        assert reparsed == original
        assert reparsed.port == 50000
        assert reparsed.codecs == original.codecs

    def test_parse_lf_only_bodies(self):
        body = SessionDescription.offer("h").to_body().replace("\r\n", "\n")
        assert SessionDescription.parse(body).address == "h"

    def test_connection_line_overrides_origin(self):
        body = (
            "v=0\r\no=u 1 1 IN IP4 1.1.1.1\r\ns=x\r\n"
            "c=IN IP4 2.2.2.2\r\nt=0 0\r\nm=audio 4000 RTP/AVP 0\r\n"
        )
        assert SessionDescription.parse(body).address == "2.2.2.2"

    @pytest.mark.parametrize(
        "body",
        [
            "",
            "v=0",                                     # missing o/m
            "v=1\r\no=u 1 1 IN IP4 h\r\nm=audio 1 RTP/AVP 0",  # bad version
            "v=0\r\no=broken\r\nm=audio 1 RTP/AVP 0",  # bad origin
            "v=0\r\no=u 1 1 IN IP4 h\r\nm=video 1 RTP/AVP 0",  # not audio
            "v=0\r\no=u 1 1 IN IP4 h\r\nm=audio x RTP/AVP 0",  # bad port
            "v=0\r\nnoequals\r\no=u 1 1 IN IP4 h\r\nm=audio 1 RTP/AVP 0",
        ],
    )
    def test_rejects_garbage(self, body):
        with pytest.raises(SdpError):
            SessionDescription.parse(body)


class TestNegotiation:
    def test_common_codecs(self):
        a = SessionDescription(codecs={0: "PCMU/8000", 8: "PCMA/8000"})
        b = SessionDescription(codecs={8: "PCMA/8000", 18: "G729/8000"})
        assert a.common_codecs(b) == [8]

    @given(
        payload_types=st.lists(
            st.integers(min_value=0, max_value=127), min_size=1, max_size=8,
            unique=True,
        ),
        port=st.integers(min_value=1024, max_value=65535),
    )
    def test_property_round_trip(self, payload_types, port):
        codecs = {pt: f"CODEC{pt}/8000" for pt in payload_types}
        original = SessionDescription(address="h.x", port=port, codecs=codecs)
        reparsed = SessionDescription.parse(original.to_body())
        assert reparsed == original


class TestEndToEndBodies:
    def test_calls_negotiate_sdp(self, fast_config):
        """The simulated calls carry offer/answer bodies end to end."""
        from repro.harness.runner import run_scenario
        from repro.workloads.scenarios import two_series

        scenario = two_series(1000, policy="static", config=fast_config)
        trace = scenario.enable_trace()
        run_scenario(scenario, duration=1.0, warmup=0.2, drain=1.0)
        call_id = trace.call_ids()[0]
        flow = trace.call_flow(call_id)
        invites = [e for e in flow if e.label == "INVITE"]
        oks = [e for e in flow if e.label == "200 OK"
               and e.payload.cseq.method == "INVITE"]
        assert invites and oks
        offer = SessionDescription.parse(invites[0].payload.body)
        answer = SessionDescription.parse(oks[0].payload.body)
        assert offer.common_codecs(answer), "no codec agreement"
