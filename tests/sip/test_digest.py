"""Tests for RFC 2617 digest authentication."""

import hashlib

import pytest

from repro.sip.digest import (
    CredentialStore,
    compute_digest,
    make_authorization,
    make_challenge,
)
from repro.sip.headers import parse_auth_params


class TestComputeDigest:
    def test_known_vector(self):
        """Hand-computed MD5 digest for fixed inputs."""
        ha1 = hashlib.md5(b"alice:realm:secret").hexdigest()
        ha2 = hashlib.md5(b"INVITE:sip:bob@b.com").hexdigest()
        expected = hashlib.md5(f"{ha1}:n1:{ha2}".encode()).hexdigest()
        assert compute_digest("alice", "realm", "secret", "INVITE",
                              "sip:bob@b.com", "n1") == expected

    def test_differs_by_every_input(self):
        base = compute_digest("u", "r", "p", "INVITE", "sip:x", "n")
        assert compute_digest("v", "r", "p", "INVITE", "sip:x", "n") != base
        assert compute_digest("u", "r", "q", "INVITE", "sip:x", "n") != base
        assert compute_digest("u", "r", "p", "BYE", "sip:x", "n") != base
        assert compute_digest("u", "r", "p", "INVITE", "sip:y", "n") != base
        assert compute_digest("u", "r", "p", "INVITE", "sip:x", "m") != base


class TestChallengeAndAuthorization:
    def test_challenge_format(self):
        scheme, params = parse_auth_params(make_challenge("realm.example", "n42"))
        assert scheme == "Digest"
        assert params == {"realm": "realm.example", "nonce": "n42"}

    def test_authorization_round_trips_through_store(self):
        store = CredentialStore("realm.example")
        store.add_user("alice", "secret")
        header = make_authorization(
            "alice", "realm.example", "secret", "INVITE", "sip:bob@b.com", "n1"
        )
        assert store.verify(header, "INVITE")
        assert store.checks == 1
        assert store.failures == 0


class TestCredentialStore:
    def make_header(self, password="secret", username="alice", method="INVITE"):
        return make_authorization(
            username, "r", password, method, "sip:u@h", "n1"
        )

    def test_wrong_password_fails(self):
        store = CredentialStore("r")
        store.add_user("alice", "secret")
        assert not store.verify(self.make_header(password="wrong"), "INVITE")
        assert store.failures == 1

    def test_unknown_user_fails(self):
        store = CredentialStore("r")
        assert not store.verify(self.make_header(), "INVITE")

    def test_wrong_method_fails(self):
        store = CredentialStore("r")
        store.add_user("alice", "secret")
        header = self.make_header(method="INVITE")
        assert not store.verify(header, "BYE")

    def test_non_digest_scheme_fails(self):
        store = CredentialStore("r")
        assert not store.verify('Basic dXNlcjpwYXNz', "INVITE")

    def test_missing_fields_fail(self):
        store = CredentialStore("r")
        assert not store.verify('Digest realm="r"', "INVITE")

    def test_garbage_header_fails(self):
        store = CredentialStore("r")
        assert not store.verify("Digest notkeyvalue", "INVITE")

    def test_extract_username(self):
        store = CredentialStore("r")
        assert store.extract_username(self.make_header()) == "alice"
        assert store.extract_username("garbage noequals") is None

    def test_has_user(self):
        store = CredentialStore("r")
        store.add_user("a", "p")
        assert store.has_user("a")
        assert not store.has_user("b")
