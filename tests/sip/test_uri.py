"""Tests for SIP URI parsing and formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.sip.uri import SipUri, SipUriError, parse_uri


class TestParsing:
    def test_minimal(self):
        uri = parse_uri("sip:example.com")
        assert uri.scheme == "sip"
        assert uri.user is None
        assert uri.host == "example.com"
        assert uri.port is None

    def test_user_host(self):
        uri = parse_uri("sip:HAL@us.ibm.com")
        assert uri.user == "HAL"
        assert uri.host == "us.ibm.com"

    def test_user_host_port(self):
        uri = parse_uri("sip:burdell@cc.gatech.edu:5060")
        assert uri.user == "burdell"
        assert uri.port == 5060

    def test_params(self):
        uri = parse_uri("sip:a@b.com;transport=udp;lr")
        assert uri.params["transport"] == "udp"
        assert uri.params["lr"] is None

    def test_header_params(self):
        uri = parse_uri("sip:a@b.com?subject=hi&priority=urgent")
        assert uri.headers == {"subject": "hi", "priority": "urgent"}

    def test_sips_scheme(self):
        assert parse_uri("sips:a@b.com").scheme == "sips"

    def test_angle_brackets_stripped(self):
        assert parse_uri("<sip:a@b.com>").user == "a"

    def test_host_only_port(self):
        uri = parse_uri("sip:10.0.0.7:5080")
        assert uri.host == "10.0.0.7"
        assert uri.port == 5080

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "example.com",
            "http://example.com",
            "sip:",
            "sip:@host.com",
            "sip:user@",
            "sip:user@host:notaport",
        ],
    )
    def test_rejects_bad_uris(self, bad):
        with pytest.raises(SipUriError):
            parse_uri(bad)


class TestFormatting:
    def test_round_trip_simple(self):
        text = "sip:burdell@cc.gatech.edu:5060"
        assert str(parse_uri(text)) == text

    def test_round_trip_params(self):
        text = "sip:a@b.com;transport=udp;lr"
        assert str(parse_uri(text)) == text

    def test_round_trip_headers(self):
        text = "sip:a@b.com?x=1"
        assert str(parse_uri(text)) == text

    def test_aor_strips_port_and_params(self):
        uri = parse_uri("sip:a@b.com:5060;transport=tcp")
        assert uri.aor == "sip:a@b.com"

    def test_address(self):
        assert parse_uri("sip:a@b.com:5060").address == "a@b.com:5060"
        assert parse_uri("sip:b.com").address == "b.com"


class TestSemantics:
    def test_equality_ignores_params(self):
        assert parse_uri("sip:a@b.com;lr") == parse_uri("sip:a@b.com")

    def test_equality_case_insensitive_host(self):
        assert parse_uri("sip:a@B.COM") == parse_uri("sip:a@b.com")

    def test_inequality_port(self):
        assert parse_uri("sip:a@b.com:5060") != parse_uri("sip:a@b.com")

    def test_hash_consistent_with_eq(self):
        a = parse_uri("sip:a@B.com;x=1")
        b = parse_uri("sip:a@b.com")
        assert hash(a) == hash(b)

    def test_with_params_copies(self):
        base = parse_uri("sip:a@b.com")
        derived = base.with_params(lr=None)
        assert "lr" in derived.params
        assert "lr" not in base.params

    def test_constructor_validation(self):
        with pytest.raises(SipUriError):
            SipUri("")
        with pytest.raises(SipUriError):
            SipUri("h", port=0)
        with pytest.raises(SipUriError):
            SipUri("h", scheme="tel")


_users = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789.-_"),
    min_size=1, max_size=12,
).filter(lambda s: not s.startswith(".") )
_hosts = st.from_regex(r"[a-z][a-z0-9]{0,8}(\.[a-z][a-z0-9]{0,8}){0,3}", fullmatch=True)
_ports = st.one_of(st.none(), st.integers(min_value=1, max_value=65535))


class TestPropertyRoundTrip:
    @given(user=_users, host=_hosts, port=_ports)
    def test_parse_format_parse_fixpoint(self, user, host, port):
        original = SipUri(host, user, port)
        reparsed = parse_uri(str(original))
        assert reparsed == original
        assert str(reparsed) == str(original)

    @given(host=_hosts, port=_ports)
    def test_userless_round_trip(self, host, port):
        original = SipUri(host, None, port)
        assert parse_uri(str(original)) == original
