"""Tests for structured SIP headers."""

import pytest

from repro.sip.headers import (
    CSeq,
    NameAddr,
    SipHeaderError,
    Via,
    canonical_name,
    format_auth_params,
    parse_auth_params,
    parse_comma_separated,
)
from repro.sip.uri import parse_uri


class TestCanonicalNames:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("v", "Via"),
            ("F", "From"),
            ("i", "Call-ID"),
            ("m", "Contact"),
            ("l", "Content-Length"),
            ("VIA", "Via"),
            ("call-id", "Call-ID"),
            ("cseq", "CSeq"),
            ("record-route", "Record-Route"),
            ("x-servartuka-state", "X-Servartuka-State"),
            ("X-Custom-Thing", "X-Custom-Thing"),
        ],
    )
    def test_canonicalization(self, raw, expected):
        assert canonical_name(raw) == expected


class TestVia:
    def test_parse_basic(self):
        via = Via.parse("SIP/2.0/UDP proxy.example.com;branch=z9hG4bK776")
        assert via.transport == "UDP"
        assert via.host == "proxy.example.com"
        assert via.port is None
        assert via.branch == "z9hG4bK776"

    def test_parse_with_port(self):
        via = Via.parse("SIP/2.0/TCP 10.0.0.1:5061;branch=z9hG4bKx")
        assert via.port == 5061
        assert via.transport == "TCP"

    def test_parse_extra_params(self):
        via = Via.parse("SIP/2.0/UDP h;branch=z9hG4bKa;received=1.2.3.4")
        assert via.params["received"] == "1.2.3.4"

    def test_round_trip(self):
        text = "SIP/2.0/UDP proxy:5060;branch=z9hG4bK99;rport"
        assert str(Via.parse(text)) == text

    def test_sent_by(self):
        assert Via("h", 5060).sent_by == "h:5060"
        assert Via("h").sent_by == "h"

    def test_constructor_branch_kwarg(self):
        via = Via("h", branch="z9hG4bKq")
        assert via.branch == "z9hG4bKq"

    @pytest.mark.parametrize("bad", ["", "UDP host", "SIP/2.0 host", "SIP/2.0/UDP h:x"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(SipHeaderError):
            Via.parse(bad)

    def test_equality(self):
        a = Via.parse("SIP/2.0/UDP h;branch=z9hG4bK1")
        b = Via.parse("SIP/2.0/UDP h;branch=z9hG4bK1")
        assert a == b and hash(a) == hash(b)


class TestNameAddr:
    def test_parse_bare_uri(self):
        na = NameAddr.parse("sip:a@b.com")
        assert na.uri == parse_uri("sip:a@b.com")
        assert na.display is None

    def test_parse_angle_with_tag(self):
        na = NameAddr.parse("<sip:a@b.com>;tag=88a7s")
        assert na.tag == "88a7s"

    def test_parse_display_name(self):
        na = NameAddr.parse('"Hal 9000" <sip:hal@us.ibm.com>;tag=x')
        assert na.display == "Hal 9000"
        assert na.uri.user == "hal"

    def test_unquoted_display(self):
        na = NameAddr.parse("Hal <sip:hal@b.com>")
        assert na.display == "Hal"

    def test_addr_spec_params_belong_to_header(self):
        na = NameAddr.parse("sip:a@b.com;tag=1")
        assert na.tag == "1"
        assert "tag" not in na.uri.params

    def test_angle_uri_params_stay_in_uri(self):
        na = NameAddr.parse("<sip:a@b.com;lr>;tag=1")
        assert "lr" in na.uri.params
        assert na.tag == "1"

    def test_round_trip(self):
        text = '"Bob" <sip:bob@biloxi.com>;tag=a6c85cf'
        assert str(NameAddr.parse(text)) == text

    def test_with_tag_copies(self):
        base = NameAddr.parse("<sip:a@b.com>")
        tagged = base.with_tag("t1")
        assert tagged.tag == "t1"
        assert base.tag is None


class TestCSeq:
    def test_parse(self):
        cseq = CSeq.parse("314159 INVITE")
        assert cseq.number == 314159
        assert cseq.method == "INVITE"

    def test_round_trip(self):
        assert str(CSeq.parse("2 BYE")) == "2 BYE"

    def test_next_in_dialog(self):
        assert CSeq(1, "INVITE").next_in_dialog("BYE") == CSeq(2, "BYE")

    @pytest.mark.parametrize("bad", ["", "INVITE", "1", "x INVITE", "1 2 3"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(SipHeaderError):
            CSeq.parse(bad)

    def test_negative_rejected(self):
        with pytest.raises(SipHeaderError):
            CSeq(-1, "BYE")


class TestCommaSplitting:
    def test_simple(self):
        assert parse_comma_separated("a, b,c") == ["a", "b", "c"]

    def test_respects_angle_brackets(self):
        value = "<sip:a@b.com;lr>, <sip:c@d.com>"
        assert parse_comma_separated(value) == ["<sip:a@b.com;lr>", "<sip:c@d.com>"]

    def test_respects_quotes(self):
        value = '"Smith, John" <sip:j@x.com>, <sip:k@y.com>'
        assert parse_comma_separated(value) == [
            '"Smith, John" <sip:j@x.com>', "<sip:k@y.com>",
        ]

    def test_empty(self):
        assert parse_comma_separated("") == []


class TestAuthParams:
    def test_round_trip(self):
        value = format_auth_params("Digest", {"realm": "r", "nonce": "n1"})
        scheme, params = parse_auth_params(value)
        assert scheme == "Digest"
        assert params == {"realm": "r", "nonce": "n1"}

    def test_parse_unquoted_values(self):
        scheme, params = parse_auth_params("Digest realm=r, qop=auth")
        assert params["qop"] == "auth"

    def test_bad_item_raises(self):
        with pytest.raises(SipHeaderError):
            parse_auth_params("Digest realmonly")
