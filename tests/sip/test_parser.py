"""Tests for wire-format parsing, including round-trip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.sip.headers import Via
from repro.sip.message import SipRequest, SipResponse
from repro.sip.parser import SipParseError, parse_message

RAW_INVITE = (
    "INVITE sip:burdell@cc.gatech.edu SIP/2.0\r\n"
    "Via: SIP/2.0/UDP p1.example.com;branch=z9hG4bK2\r\n"
    "Via: SIP/2.0/UDP uac.example.com;branch=z9hG4bK1\r\n"
    "From: \"Hal\" <sip:hal@us.ibm.com>;tag=a1\r\n"
    "To: <sip:burdell@cc.gatech.edu>\r\n"
    "Call-ID: abc123@uac\r\n"
    "CSeq: 1 INVITE\r\n"
    "Max-Forwards: 69\r\n"
    "Content-Length: 0\r\n"
    "\r\n"
)


class TestRequestParsing:
    def test_basic_invite(self):
        msg = parse_message(RAW_INVITE)
        assert isinstance(msg, SipRequest)
        assert msg.method == "INVITE"
        assert msg.uri.user == "burdell"
        assert len(msg.vias) == 2
        assert msg.top_via.host == "p1.example.com"
        assert msg.from_.display == "Hal"
        assert msg.cseq.number == 1

    def test_bytes_input(self):
        msg = parse_message(RAW_INVITE.encode("utf-8"))
        assert msg.method == "INVITE"

    def test_compact_header_names(self):
        raw = (
            "OPTIONS sip:x@y.com SIP/2.0\r\n"
            "v: SIP/2.0/UDP h;branch=z9hG4bK0\r\n"
            "f: <sip:a@b.com>;tag=1\r\nt: <sip:x@y.com>\r\n"
            "i: cid1\r\nCSeq: 7 OPTIONS\r\nl: 0\r\n\r\n"
        )
        msg = parse_message(raw)
        assert msg.call_id == "cid1"
        assert msg.get("Content-Length") == "0"

    def test_header_folding(self):
        raw = (
            "OPTIONS sip:x@y.com SIP/2.0\r\n"
            "Subject: first part\r\n continued here\r\n"
            "Call-ID: c\r\nCSeq: 1 OPTIONS\r\n"
            "From: <sip:a@b.c>;tag=1\r\nTo: <sip:x@y.com>\r\n\r\n"
        )
        msg = parse_message(raw)
        assert msg.get("Subject") == "first part continued here"

    def test_comma_separated_vias_split(self):
        raw = (
            "OPTIONS sip:x@y.com SIP/2.0\r\n"
            "Via: SIP/2.0/UDP a;branch=z9hG4bK1, SIP/2.0/UDP b;branch=z9hG4bK2\r\n"
            "Call-ID: c\r\nCSeq: 1 OPTIONS\r\n"
            "From: <sip:a@b.c>;tag=1\r\nTo: <sip:x@y.com>\r\n\r\n"
        )
        msg = parse_message(raw)
        assert [v.host for v in msg.vias] == ["a", "b"]

    def test_body_extraction(self):
        raw = (
            "INVITE sip:x@y.com SIP/2.0\r\n"
            "Call-ID: c\r\nCSeq: 1 INVITE\r\n"
            "From: <sip:a@b.c>;tag=1\r\nTo: <sip:x@y.com>\r\n"
            "Content-Length: 4\r\n\r\nv=0\n"
        )
        assert parse_message(raw).body == "v=0\n"

    def test_truncated_body_rejected(self):
        raw = (
            "INVITE sip:x@y.com SIP/2.0\r\n"
            "Content-Length: 100\r\n\r\nshort"
        )
        with pytest.raises(SipParseError):
            parse_message(raw)


class TestResponseParsing:
    def test_basic_response(self):
        raw = (
            "SIP/2.0 200 OK\r\n"
            "Via: SIP/2.0/UDP uac;branch=z9hG4bK1\r\n"
            "From: <sip:a@b.c>;tag=1\r\nTo: <sip:x@y.com>;tag=2\r\n"
            "Call-ID: c\r\nCSeq: 1 INVITE\r\nContent-Length: 0\r\n\r\n"
        )
        msg = parse_message(raw)
        assert isinstance(msg, SipResponse)
        assert msg.status == 200
        assert msg.reason == "OK"

    def test_multiword_reason(self):
        raw = "SIP/2.0 500 Server Internal Error\r\nContent-Length: 0\r\n\r\n"
        msg = parse_message(raw)
        assert msg.reason == "Server Internal Error"


class TestErrors:
    @pytest.mark.parametrize(
        "raw",
        [
            "",
            "   \r\n",
            "INVITE sip:x@y.com\r\n\r\n",              # missing version
            "INVITE sip:x@y.com HTTP/1.1\r\n\r\n",     # wrong version
            "SIP/2.0 abc OK\r\n\r\n",                  # bad status
            "INVITE notauri SIP/2.0\r\n\r\n",          # bad URI
            "INVITE sip:x@y.com SIP/2.0\r\nNoColonHere\r\n\r\n",
            "INVITE sip:x@y.com SIP/2.0\r\n badfold: x\r\n\r\n",
            "INVITE sip:x@y.com SIP/2.0\r\nContent-Length: abc\r\n\r\n",
        ],
    )
    def test_rejects_garbage(self, raw):
        with pytest.raises(SipParseError):
            parse_message(raw)


class TestRobustness:
    """Hostile input must fail *cleanly*: SipParseError or a message,
    never an unrelated exception -- a proxy parses whatever the network
    delivers."""

    @given(raw=st.text(max_size=300))
    def test_arbitrary_text_never_crashes(self, raw):
        try:
            message = parse_message(raw)
        except SipParseError:
            return
        assert message.is_request or message.is_response

    @given(raw=st.binary(max_size=300))
    def test_arbitrary_bytes_never_crash(self, raw):
        try:
            message = parse_message(raw)
        except SipParseError:
            return
        assert message.is_request or message.is_response

    @given(
        prefix=st.integers(min_value=0, max_value=len(RAW_INVITE)),
    )
    def test_truncated_real_message_never_crashes(self, prefix):
        try:
            parse_message(RAW_INVITE[:prefix])
        except SipParseError:
            pass

    @given(
        index=st.integers(min_value=0, max_value=len(RAW_INVITE) - 1),
        junk=st.characters(blacklist_categories=("Cs",)),
    )
    def test_single_byte_corruption_never_crashes(self, index, junk):
        corrupted = RAW_INVITE[:index] + junk + RAW_INVITE[index + 1:]
        try:
            parse_message(corrupted)
        except SipParseError:
            pass


class TestRoundTrip:
    def test_request_round_trip(self):
        msg = parse_message(RAW_INVITE)
        again = parse_message(msg.to_wire())
        assert again.method == msg.method
        assert again.headers == msg.headers
        assert str(again.uri) == str(msg.uri)

    def test_response_round_trip(self):
        req = parse_message(RAW_INVITE)
        resp = SipResponse.for_request(req, 180, to_tag="t9")
        again = parse_message(resp.to_wire())
        assert again.status == 180
        assert again.to.tag == "t9"
        assert [str(v) for v in again.vias] == [str(v) for v in resp.vias]

    @given(
        method=st.sampled_from(["INVITE", "BYE", "OPTIONS", "REGISTER"]),
        user=st.from_regex(r"[a-z][a-z0-9]{0,8}", fullmatch=True),
        host=st.from_regex(r"[a-z][a-z0-9]{0,6}\.[a-z]{2,4}", fullmatch=True),
        cseq=st.integers(min_value=1, max_value=2 ** 31),
        n_vias=st.integers(min_value=1, max_value=5),
        body=st.text(
            alphabet=st.sampled_from("abcdefgh =\n0123456789"), max_size=64
        ),
    )
    def test_property_round_trip(self, method, user, host, cseq, n_vias, body):
        request = SipRequest.build(
            method,
            uri=f"sip:{user}@{host}",
            from_addr=f"sip:caller@{host}",
            to_addr=f"sip:{user}@{host}",
            call_id=f"cid-{cseq}",
            cseq=cseq,
            from_tag="ft",
            body=body,
        )
        for index in range(n_vias):
            request.push_via(Via(f"hop{index}", branch=f"z9hG4bK{index}"))
        reparsed = parse_message(request.to_wire())
        assert reparsed.method == method
        assert reparsed.cseq.number == cseq
        assert reparsed.body == body
        assert [v.branch for v in reparsed.vias] == [
            v.branch for v in request.vias
        ]
        # Second round trip must be a fixpoint.
        assert parse_message(reparsed.to_wire()).to_wire() == reparsed.to_wire()
