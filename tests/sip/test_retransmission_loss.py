"""Retransmission behaviour under message loss (RFC 3261 section 17).

Three layers:

1. exact Timer A / Timer E schedules when every message is lost
   (send times asserted to the tick, plus the Timer B/F deadlines),
2. client/server transaction pairs joined by a deterministic Bernoulli
   lossy channel -- every transaction must eventually complete at 5%
   and 30% loss, with retransmission volume growing with the loss rate,
3. a full two-proxies-in-series scenario with a lossy access link,
   where the stateful entry proxy plus the UAC's retransmissions must
   recover nearly every call.

All randomness flows through seeded :class:`~repro.sim.rng.RngStream`
substreams, so the battery is bit-deterministic.
"""

import pytest

from repro.sim.events import EventLoop
from repro.sim.rng import RngStream
from repro.sip.headers import Via
from repro.sip.message import SipRequest, SipResponse
from repro.sip.timers import TimerPolicy
from repro.sip.transaction import (
    ClientTransaction,
    ServerTransaction,
    TransactionState,
)
from repro.workloads.scenarios import ScenarioConfig, two_series

TIMERS = TimerPolicy(t1=0.1, t2=0.4, t4=0.4)

#: Timer A doubling from t1=0.1: sends at 0, .1, .3, .7, 1.5, 3.1, 6.3;
#: Timer B (64*t1) then kills the transaction at 6.4.
INVITE_SEND_TIMES = [0.0, 0.1, 0.3, 0.7, 1.5, 3.1, 6.3]

#: Timer E doubles but caps at T2=0.4: 0, .1, .3, .7 then every 0.4.
BYE_SEND_TIMES = [0.0, 0.1, 0.3] + [round(0.7 + 0.4 * k, 10) for k in range(15)]


def make_request(method="INVITE", index=0):
    request = SipRequest.build(
        method,
        uri="sip:u@example.com",
        from_addr="sip:caller@example.com",
        to_addr="sip:u@example.com",
        call_id=f"c{index}",
        cseq=1 if method in ("INVITE", "ACK") else 2,
        from_tag="ft",
    )
    request.push_via(Via("uac", branch=f"z9hG4bKloss{index}"))
    return request


class BlackHoleHarness:
    """Client transaction whose wire drops everything: pure timer study."""

    def __init__(self, method):
        self.loop = EventLoop()
        self.send_times = []
        self.timed_out_at = None
        self.request = make_request(method)
        self.txn = ClientTransaction(
            self.request,
            self.loop,
            send_fn=lambda message: self.send_times.append(self.loop.now),
            on_response=lambda response: None,
            on_timeout=self._on_timeout,
            timers=TIMERS,
        )

    def _on_timeout(self):
        self.timed_out_at = self.loop.now


class TestLossTimerSchedules:
    """Exact retransmission timetables when no message ever arrives."""

    def test_invite_timer_a_doubles_to_timer_b(self):
        h = BlackHoleHarness("INVITE")
        h.txn.start()
        h.loop.run_until(10.0)
        assert h.send_times == pytest.approx(INVITE_SEND_TIMES)
        assert h.txn.retransmit_count == len(INVITE_SEND_TIMES) - 1
        assert h.timed_out_at == pytest.approx(TIMERS.timer_b)
        assert h.txn.state == TransactionState.TERMINATED

    def test_invite_alive_just_before_timer_b(self):
        h = BlackHoleHarness("INVITE")
        h.txn.start()
        h.loop.run_until(TIMERS.timer_b - 0.05)
        assert h.timed_out_at is None
        h.loop.run_until(TIMERS.timer_b + 0.05)
        assert h.timed_out_at is not None

    def test_bye_timer_e_caps_at_t2_until_timer_f(self):
        h = BlackHoleHarness("BYE")
        h.txn.start()
        h.loop.run_until(10.0)
        assert h.send_times == pytest.approx(BYE_SEND_TIMES)
        assert h.timed_out_at == pytest.approx(TIMERS.timer_f)

    def test_late_provisional_disarms_invite_retransmit(self):
        h = BlackHoleHarness("INVITE")
        h.txn.start()
        h.loop.run_until(0.75)  # three retransmits already gone
        h.txn.receive_response(SipResponse.for_request(h.request, 100))
        h.loop.run_until(5.0)
        assert h.send_times == pytest.approx(INVITE_SEND_TIMES[:4])
        assert h.timed_out_at is None  # Timer B still pending at 6.4
        h.loop.run_until(TIMERS.timer_b + 0.1)
        assert h.timed_out_at is not None  # provisional alone never completes


LATENCY = 0.005


class LossyPair:
    """One client/server transaction pair over a Bernoulli-lossy wire.

    The server answers ``status`` as soon as the request first arrives,
    then relies on the transaction machinery (response replay for
    non-INVITE, Timer G retransmission plus re-ACK for non-2xx INVITE)
    to push the final through the lossy channel.
    """

    def __init__(self, loop, rng, method, status, loss, index):
        self.loop = loop
        self.rng = rng
        self.loss = loss
        self.status = status
        self.final = None
        self.timed_out = False
        self.server = None
        self.request = make_request(method, index)
        self.client = ClientTransaction(
            self.request,
            loop,
            send_fn=self._client_to_server,
            on_response=self._on_response,
            on_timeout=self._on_timeout,
            timers=TIMERS,
        )

    # -- wire ----------------------------------------------------------
    def _client_to_server(self, message):
        if not self.rng.bernoulli(self.loss):
            self.loop.schedule(LATENCY, self._server_receive, message)

    def _server_to_client(self, response):
        if not self.rng.bernoulli(self.loss):
            self.loop.schedule(LATENCY, self.client.receive_response, response)

    # -- endpoints -----------------------------------------------------
    def _server_receive(self, message):
        if self.server is None:
            if message.method == "ACK":  # ACK outliving a reaped txn
                return
            self.server = ServerTransaction(
                message, self.loop, send_fn=self._server_to_client,
                timers=TIMERS,
            )
            self.server.send_response(
                SipResponse.for_request(message, self.status, to_tag="ut")
            )
        else:
            self.server.receive_request(message)

    def _on_response(self, response):
        if not response.is_provisional:
            self.final = response.status

    def _on_timeout(self):
        self.timed_out = True


def run_lossy_batch(method, status, loss, count=40, seed=2024):
    loop = EventLoop()
    rng = RngStream(seed, f"{method}-loss{loss}")
    pairs = [
        LossyPair(loop, rng.spawn(f"pair{i}"), method, status, loss, i)
        for i in range(count)
    ]
    for pair in pairs:
        pair.client.start()
    loop.run_until(2 * TIMERS.timer_b)
    return pairs


class TestLossyChannelCompletion:
    """Every transaction completes despite 5% / 30% Bernoulli loss."""

    @pytest.mark.parametrize("loss", [0.0, 0.05, 0.30])
    def test_invite_all_complete(self, loss):
        pairs = run_lossy_batch("INVITE", 486, loss)
        assert all(pair.final == 486 for pair in pairs)
        assert not any(pair.timed_out for pair in pairs)

    @pytest.mark.parametrize("loss", [0.0, 0.05, 0.30])
    def test_bye_all_complete(self, loss):
        pairs = run_lossy_batch("BYE", 200, loss)
        assert all(pair.final == 200 for pair in pairs)
        assert not any(pair.timed_out for pair in pairs)

    def test_retransmissions_scale_with_loss(self):
        volumes = {}
        for loss in (0.0, 0.05, 0.30):
            pairs = run_lossy_batch("INVITE", 486, loss)
            volumes[loss] = sum(p.client.retransmit_count for p in pairs)
        assert volumes[0.0] == 0  # clean channel: final beats Timer A
        assert 0 < volumes[0.05] < volumes[0.30]

    def test_lossy_batches_are_deterministic(self):
        first = [
            p.client.retransmit_count
            for p in run_lossy_batch("BYE", 200, 0.30)
        ]
        second = [
            p.client.retransmit_count
            for p in run_lossy_batch("BYE", 200, 0.30)
        ]
        assert first == second


def run_series_with_access_loss(loss):
    """Two stateful proxies in series; the UAC's access link drops
    ``loss`` of the packets in each direction."""
    config = ScenarioConfig(
        scale=50.0,
        seed=11,
        noise_sigma=0.30,
        monitor_period=0.5,
        timers=TimerPolicy(t1=0.05, t2=0.2, t4=0.2),
    )
    scenario = two_series(2000.0, policy="static", config=config)
    if loss:
        scenario.network.set_loss("uac1", "P1", loss)
    scenario.start()
    scenario.loop.run_until(4.0)
    scenario.stop_load()
    # Drain past Timer B/F (64 * 0.05 = 3.2 s) so stragglers resolve.
    scenario.loop.run_until(8.0)
    return scenario.generators[0]


class TestScenarioAccessLinkLoss:
    """End-to-end: a lossy access link is survivable, not free."""

    @pytest.mark.parametrize("loss", [0.0, 0.05, 0.30])
    def test_calls_complete_despite_loss(self, loss):
        generator = run_series_with_access_loss(loss)
        attempted = generator.calls_attempted
        assert attempted > 100
        floor = {0.0: 1.0, 0.05: 0.99, 0.30: 0.95}[loss]
        assert generator.calls_completed >= floor * attempted

    def test_retransmissions_monotone_in_loss(self):
        volumes = {
            loss: run_series_with_access_loss(loss).retransmissions()
            for loss in (0.0, 0.05, 0.30)
        }
        assert volumes[0.0] == 0  # uncongested, clean link
        assert 0 < volumes[0.05] < volumes[0.30]
