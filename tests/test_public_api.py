"""The public API surface: everything advertised must exist and work."""

import importlib

import pytest

import repro


class TestAllExports:
    def test_every_name_in_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.sip", "repro.sip.uri", "repro.sip.headers",
            "repro.sip.message", "repro.sip.parser", "repro.sip.timers",
            "repro.sip.transaction", "repro.sip.dialog", "repro.sip.digest",
            "repro.sip.sdp",
            "repro.sim", "repro.sim.events", "repro.sim.cpu",
            "repro.sim.network", "repro.sim.metrics", "repro.sim.rng",
            "repro.sim.trace",
            "repro.servers", "repro.servers.node", "repro.servers.proxy",
            "repro.servers.uac", "repro.servers.uas",
            "repro.servers.location", "repro.servers.registrar_client",
            "repro.core", "repro.core.costmodel", "repro.core.topology",
            "repro.core.lp", "repro.core.analysis", "repro.core.servartuka",
            "repro.core.static_policy", "repro.core.overload",
            "repro.core.fluid", "repro.core.simplex", "repro.core.topogen",
            "repro.workloads", "repro.workloads.scenarios",
            "repro.workloads.callgen",
            "repro.harness", "repro.harness.runner",
            "repro.harness.saturation", "repro.harness.figures",
            "repro.harness.report", "repro.harness.experiments",
            "repro.harness.optgap",
            "repro.cli",
        ],
    )
    def test_module_imports(self, module):
        importlib.import_module(module)

    def test_subpackage_alls_resolve(self):
        for package_name in ("repro.sip", "repro.sim", "repro.servers",
                             "repro.core", "repro.workloads", "repro.harness"):
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                assert hasattr(package, name), (package_name, name)


class TestDocstrings:
    def test_every_public_module_documented(self):
        for module_name in ("repro", "repro.core.servartuka",
                            "repro.core.costmodel", "repro.core.lp",
                            "repro.servers.proxy", "repro.harness.figures"):
            module = importlib.import_module(module_name)
            assert module.__doc__ and len(module.__doc__) > 80, module_name

    def test_quickstart_snippet_from_docs_runs(self):
        """The README/API quickstart must keep working."""
        from repro import ScenarioConfig, run_scenario, two_series

        scenario = two_series(4000, policy="servartuka",
                              config=ScenarioConfig(scale=80.0, seed=1))
        result = run_scenario(scenario, duration=2.0, warmup=1.0)
        assert result.throughput_cps > 2000
