"""Tests for the location service."""

import pytest

from repro.servers.location import LocationService


class TestRegistration:
    def test_register_and_lookup(self):
        service = LocationService()
        service.register("sip:alice@example.com", "uas1")
        binding = service.lookup("sip:alice@example.com")
        assert binding is not None
        assert binding.node == "uas1"

    def test_lookup_accepts_bare_aor(self):
        service = LocationService()
        service.register("alice@example.com", "uas1")
        assert service.lookup("sip:alice@example.com") is not None

    def test_lookup_normalizes_angle_brackets(self):
        service = LocationService()
        service.register("<sip:alice@example.com>", "uas1")
        assert service.lookup("alice@example.com") is not None

    def test_reregister_same_node_replaces(self):
        service = LocationService()
        service.register("a@x.com", "uas1", contact="sip:old@x.com")
        service.register("a@x.com", "uas1", contact="sip:new@x.com")
        bindings = service.bindings_for("a@x.com")
        assert len(bindings) == 1
        assert bindings[0].contact.user == "new"

    def test_multiple_devices(self):
        service = LocationService()
        service.register("a@x.com", "phone")
        service.register("a@x.com", "laptop")
        assert len(service.bindings_for("a@x.com")) == 2
        assert service.size == 2


class TestLookupMisses:
    def test_unknown_aor_counts_miss(self):
        service = LocationService()
        assert service.lookup("ghost@x.com") is None
        assert service.misses == 1
        assert service.lookups == 1

    def test_expired_binding_is_miss(self):
        service = LocationService()
        service.register("a@x.com", "uas1", expires_at=10.0)
        assert service.lookup("a@x.com", now=5.0) is not None
        assert service.lookup("a@x.com", now=10.0) is None

    def test_unexpiring_by_default(self):
        service = LocationService()
        service.register("a@x.com", "uas1")
        assert service.lookup("a@x.com", now=1e9) is not None


class TestUnregister:
    def test_unregister_all(self):
        service = LocationService()
        service.register("a@x.com", "n1")
        service.register("a@x.com", "n2")
        assert service.unregister("a@x.com") == 2
        assert service.lookup("a@x.com") is None

    def test_unregister_one_node(self):
        service = LocationService()
        service.register("a@x.com", "n1")
        service.register("a@x.com", "n2")
        assert service.unregister("a@x.com", node="n1") == 1
        assert service.lookup("a@x.com").node == "n2"

    def test_unregister_unknown_is_zero(self):
        assert LocationService().unregister("ghost@x.com") == 0
