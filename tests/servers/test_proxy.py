"""Behavioural tests for the proxy server.

A stub endpoint node records everything it receives; messages are
injected through the network fabric so the full receive -> CPU ->
execute pipeline runs.  The proxy uses a zero-noise CPU so assertions
are deterministic.
"""

import pytest

from repro.core.costmodel import CostModel
from repro.core.overload import OverloadReport
from repro.core.servartuka import ServartukaPolicy
from repro.core.static_policy import stateful_policy, stateless_policy
from repro.servers.location import LocationService
from repro.servers.proxy import (
    DELIVER_ACTION,
    ProxyConfig,
    ProxyServer,
    RouteTable,
    STATE_HEADER,
    STATE_HELD,
)
from repro.sim.events import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStream
from repro.sip.digest import CredentialStore, make_authorization
from repro.sip.headers import Via
from repro.sip.message import SipRequest, SipResponse


class Stub:
    """Endpoint that records everything delivered to it."""

    def __init__(self, name, network):
        self.name = name
        self.received = []
        network.register(name, self)

    def receive(self, packet):
        self.received.append(packet.payload)

    def of_type(self, cls):
        return [m for m in self.received if isinstance(m, cls)]

    def requests(self, method=None):
        out = [m for m in self.received if isinstance(m, SipRequest)]
        if method:
            out = [m for m in out if m.method == method]
        return out

    def responses(self, status=None):
        out = [m for m in self.received if isinstance(m, SipResponse)]
        if status:
            out = [m for m in out if m.status == status]
        return out


class Env:
    def __init__(self, policy=None, auth=False, routes=None, config=None):
        self.loop = EventLoop()
        self.rng = RngStream(99, "proxy-test")
        self.network = Network(self.loop, self.rng.spawn("net"))
        self.uac = Stub("uac", self.network)
        self.dst = Stub("dst", self.network)
        self.location = LocationService()
        self.location.register("sip:bob@far.example.net", "dst")
        route_table = routes or RouteTable().add("far.example.net", DELIVER_ACTION)
        credentials = None
        if auth:
            credentials = CredentialStore("realm.example")
            credentials.add_user("alice", "pw")
        self.proxy = ProxyServer(
            "P1",
            self.loop,
            self.network,
            route_table=route_table,
            location=self.location,
            policy=policy or stateful_policy(),
            config=config or ProxyConfig(auth_enabled=auth, realm="realm.example"),
            credentials=credentials,
            cost_model=CostModel(scale=1.0),
            rng=self.rng,
            noise_sigma=0.0,
        )
        self._counter = 0

    def make_invite(self, call_id=None, branch=None, **extra_headers):
        self._counter += 1
        invite = SipRequest.build(
            "INVITE",
            uri="sip:bob@far.example.net",
            from_addr="sip:alice@near.example.net",
            to_addr="sip:bob@far.example.net",
            call_id=call_id or f"c{self._counter}",
            cseq=1,
            from_tag=f"ft{self._counter}",
        )
        for name, value in extra_headers.items():
            invite.set(name.replace("_", "-"), value)
        invite.push_via(Via("uac", branch=branch or f"z9hG4bKt{self._counter}"))
        return invite

    def inject(self, src, payload, run_to=None):
        self.network.send(src, "P1", payload)
        self.loop.run_until(self.loop.now + (run_to or 0.2))


class TestStatefulForwarding:
    def test_forwards_with_own_via(self):
        env = Env()
        env.inject("uac", env.make_invite())
        forwarded = env.dst.requests("INVITE")
        assert len(forwarded) == 1
        assert forwarded[0].top_via.host == "P1"
        assert len(forwarded[0].vias) == 2

    def test_sends_100_trying_upstream(self):
        env = Env()
        env.inject("uac", env.make_invite())
        assert len(env.uac.responses(100)) == 1

    def test_marks_state_held(self):
        env = Env()
        env.inject("uac", env.make_invite())
        assert env.dst.requests()[0].get(STATE_HEADER) == STATE_HELD

    def test_record_routes_itself(self):
        env = Env()
        env.inject("uac", env.make_invite())
        record_routes = env.dst.requests()[0].get_all("Record-Route")
        assert any("P1" in rr for rr in record_routes)

    def test_decrements_max_forwards(self):
        env = Env()
        env.inject("uac", env.make_invite())
        assert env.dst.requests()[0].get("Max-Forwards") == "69"

    def test_absorbs_invite_retransmission(self):
        env = Env()
        invite = env.make_invite(branch="z9hG4bKsame")
        env.inject("uac", invite)
        env.inject("uac", invite.copy())
        assert len(env.dst.requests("INVITE")) == 1
        # The retransmit is answered from stored state (another 100).
        assert len(env.uac.responses(100)) == 2
        assert env.proxy.metrics.counter("retransmits_absorbed").value == 1

    def test_transaction_created(self):
        env = Env()
        env.inject("uac", env.make_invite())
        assert env.proxy.active_transactions == 1


class TestStatelessForwarding:
    def test_no_trying_no_state(self):
        env = Env(policy=stateless_policy())
        env.inject("uac", env.make_invite())
        assert env.uac.responses(100) == []
        assert env.proxy.active_transactions == 0
        assert env.dst.requests()[0].get(STATE_HEADER) is None

    def test_retransmissions_pass_through(self):
        env = Env(policy=stateless_policy())
        invite = env.make_invite(branch="z9hG4bKsame")
        env.inject("uac", invite)
        env.inject("uac", invite.copy())
        forwarded = env.dst.requests("INVITE")
        assert len(forwarded) == 2
        # Deterministic stateless branch: both copies share one branch
        # so downstream can match them to one transaction (RFC 16.11).
        assert forwarded[0].top_via.branch == forwarded[1].top_via.branch

    def test_no_record_route(self):
        env = Env(policy=stateless_policy())
        env.inject("uac", env.make_invite())
        assert env.dst.requests()[0].get_all("Record-Route") == []


class TestResponseForwarding:
    def respond_from_dst(self, env, status=200, to_tag="tt"):
        forwarded = env.dst.requests("INVITE")[-1]
        response = SipResponse.for_request(forwarded, status, to_tag=to_tag)
        env.inject("dst", response)
        return response

    def test_pops_own_via_and_routes_upstream(self):
        env = Env()
        env.inject("uac", env.make_invite())
        self.respond_from_dst(env)
        upstream = env.uac.responses(200)
        assert len(upstream) == 1
        assert upstream[0].top_via.host == "uac"
        assert len(upstream[0].get_all("Via")) == 1

    def test_stray_response_dropped(self):
        env = Env()
        response = SipResponse(200)
        response.add("Via", "SIP/2.0/UDP someoneelse;branch=z9hG4bKx")
        env.inject("dst", response)
        assert env.uac.responses() == []
        assert env.proxy.metrics.counter("stray_responses").value == 1

    def test_stateful_absorbs_downstream_100(self):
        env = Env()
        env.inject("uac", env.make_invite())
        self.respond_from_dst(env, status=100)
        # Our own 100 was already sent; the downstream one is consumed.
        assert len(env.uac.responses(100)) == 1
        assert env.proxy.metrics.counter("trying_absorbed").value == 1

    def test_stateless_relays_downstream_100(self):
        env = Env(policy=stateless_policy())
        env.inject("uac", env.make_invite())
        self.respond_from_dst(env, status=100)
        assert len(env.uac.responses(100)) == 1
        assert env.proxy.metrics.counter("trying_relayed").value == 1

    def test_final_response_stored_for_absorption(self):
        env = Env()
        invite = env.make_invite(branch="z9hG4bKr")
        env.inject("uac", invite)
        self.respond_from_dst(env, status=200)
        env.inject("uac", invite.copy())
        # Retransmit is answered with the stored 200, not forwarded.
        assert len(env.dst.requests("INVITE")) == 1
        assert len(env.uac.responses(200)) == 2


class TestRejections:
    def test_unknown_domain_404(self):
        env = Env()
        invite = env.make_invite()
        invite.uri = __import__("repro.sip.uri", fromlist=["parse_uri"]).parse_uri(
            "sip:bob@unknown.example.org"
        )
        env.inject("uac", invite)
        assert len(env.uac.responses(404)) == 1

    def test_unregistered_user_404(self):
        env = Env()
        env.location.unregister("sip:bob@far.example.net")
        env.inject("uac", env.make_invite())
        assert len(env.uac.responses(404)) == 1

    def test_max_forwards_exhausted_483(self):
        env = Env()
        env.inject("uac", env.make_invite(Max_Forwards="0"))
        assert len(env.uac.responses(483)) == 1
        assert env.dst.requests() == []

    def test_busy_500_when_backlogged(self):
        env = Env(config=ProxyConfig(reject_queue_delay=0.001))
        env.proxy.cpu.submit(0.5, lambda: None)  # deep backlog
        env.inject("uac", env.make_invite(), run_to=1.0)
        assert len(env.uac.responses(500)) == 1
        assert env.dst.requests() == []
        assert env.proxy.metrics.counter("server_busy_sent").value == 1

    def test_reject_absorbs_retransmits(self):
        env = Env()
        env.location.unregister("sip:bob@far.example.net")
        invite = env.make_invite(branch="z9hG4bKrej")
        env.inject("uac", invite)
        env.inject("uac", invite.copy())
        # Second copy absorbed by the reject transaction: one 404 reply
        # per delivery but never forwarded downstream.
        assert len(env.uac.responses(404)) == 2
        assert env.dst.requests() == []


class TestAuth:
    def test_unauthenticated_invite_407(self):
        env = Env(auth=True)
        env.inject("uac", env.make_invite())
        challenges = env.uac.responses(407)
        assert len(challenges) == 1
        assert "realm.example" in (challenges[0].get("Proxy-Authenticate") or "")
        assert env.dst.requests() == []

    def test_authenticated_invite_forwarded(self):
        env = Env(auth=True)
        invite = env.make_invite()
        invite.set(
            "Proxy-Authorization",
            make_authorization("alice", "realm.example", "pw", "INVITE",
                               "sip:bob@far.example.net",
                               env.proxy.config.nonce),
        )
        env.inject("uac", invite)
        assert len(env.dst.requests("INVITE")) == 1

    def test_wrong_password_407(self):
        env = Env(auth=True)
        invite = env.make_invite()
        invite.set(
            "Proxy-Authorization",
            make_authorization("alice", "realm.example", "WRONG", "INVITE",
                               "sip:bob@far.example.net",
                               env.proxy.config.nonce),
        )
        env.inject("uac", invite)
        assert len(env.uac.responses(407)) == 1


class TestRegister:
    def test_register_updates_location(self):
        env = Env()
        register = SipRequest.build(
            "REGISTER",
            uri="sip:far.example.net",
            from_addr="sip:carol@far.example.net",
            to_addr="sip:carol@far.example.net",
            call_id="r1",
            cseq=1,
            from_tag="rt",
        )
        register.set("Contact", "<sip:dst>")
        register.push_via(Via("uac", branch="z9hG4bKreg"))
        env.inject("uac", register)
        assert len(env.uac.responses(200)) == 1
        assert env.location.lookup("sip:carol@far.example.net").node == "dst"


class TestByeOwnership:
    def make_bye(self, env, with_route):
        bye = SipRequest.build(
            "BYE",
            uri="sip:bob@far.example.net",
            from_addr="sip:alice@near.example.net",
            to_addr="sip:bob@far.example.net",
            call_id="c-bye",
            cseq=2,
            from_tag="ft",
            to_tag="tt",
        )
        if with_route:
            bye.add("Route", "<sip:P1;lr>")
        bye.push_via(Via("uac", branch="z9hG4bKbye"))
        return bye

    def test_owner_handles_bye_statefully(self):
        env = Env(policy=stateless_policy())
        env.inject("uac", self.make_bye(env, with_route=True))
        assert env.proxy.metrics.counter("byes_stateful").value == 1
        # Route entry consumed before forwarding.
        assert env.dst.requests("BYE")[0].get_all("Route") == []

    def test_non_owner_forwards_bye_statelessly(self):
        env = Env(policy=stateless_policy())
        env.inject("uac", self.make_bye(env, with_route=False))
        assert env.proxy.metrics.counter("byes_stateless").value == 1


class TestControlPlane:
    def test_overload_report_reaches_policy(self):
        policy = ServartukaPolicy()
        env = Env(policy=policy)
        env.inject("dst", OverloadReport("dst", True, 100.0, 1))
        assert policy.path("dst").overload.overloaded

    def test_broadcast_splits_by_upstream_share(self):
        env = Env()
        second = Stub("uac2", env.network)
        for _ in range(3):
            env.inject("uac", env.make_invite())
        env.inject("uac2", env.make_invite())
        env.proxy.broadcast_overload(True, 100.0, sequence=1)
        env.loop.run_until(env.loop.now + 0.1)
        reports_uac = [m for m in env.uac.received if isinstance(m, OverloadReport)]
        reports_uac2 = [m for m in second.received if isinstance(m, OverloadReport)]
        assert len(reports_uac) == 1 and len(reports_uac2) == 1
        assert reports_uac[0].c_asf_rate == pytest.approx(75.0)
        assert reports_uac2[0].c_asf_rate == pytest.approx(25.0)

    def test_state_thresholds_reflect_lookup(self):
        env = Env()
        t_sf, t_sl = env.proxy.state_thresholds()
        assert t_sf == pytest.approx(10360, rel=0.01)
        assert t_sl == pytest.approx(12300, rel=0.01)
