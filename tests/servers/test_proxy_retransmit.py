"""Unit tests for the proxy's downstream client-transaction behaviour.

A stateful proxy re-sends the forwarded request on the T1 schedule
until any response arrives (RFC 3261 16.6 step 10); these tests drive
that machinery directly with stub endpoints and no link loss, checking
the schedule, cancellation and lifetime bounds.
"""

import pytest

from repro.core.costmodel import CostModel
from repro.core.static_policy import stateful_policy
from repro.servers.location import LocationService
from repro.servers.proxy import (
    DELIVER_ACTION,
    ProxyConfig,
    ProxyServer,
    RouteTable,
)
from repro.sim.events import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStream
from repro.sip.headers import Via
from repro.sip.message import SipRequest, SipResponse
from repro.sip.timers import TimerPolicy

TIMERS = TimerPolicy(t1=0.1, t2=0.4, t4=0.4)


class Stub:
    def __init__(self, name, network):
        self.name = name
        self.received = []
        network.register(name, self)

    def receive(self, packet):
        self.received.append(packet.payload)

    def requests(self, method):
        return [m for m in self.received
                if isinstance(m, SipRequest) and m.method == method]


def make_env():
    loop = EventLoop()
    rng = RngStream(31, "retr-test")
    network = Network(loop, rng.spawn("net"))
    uac = Stub("uac", network)
    dst = Stub("dst", network)
    location = LocationService()
    location.register("sip:bob@far.example.net", "dst")
    proxy = ProxyServer(
        "P1", loop, network,
        route_table=RouteTable().add("far.example.net", DELIVER_ACTION),
        location=location,
        policy=stateful_policy(),
        cost_model=CostModel(scale=1.0),
        timers=TIMERS,
        rng=rng,
        noise_sigma=0.0,
    )
    return loop, network, proxy, uac, dst


def make_invite(call_id="c1"):
    invite = SipRequest.build(
        "INVITE", "sip:bob@far.example.net", "sip:alice@near.example.net",
        "sip:bob@far.example.net", call_id, 1, "ft",
    )
    invite.push_via(Via("uac", branch=f"z9hG4bK-{call_id}"))
    return invite


class TestDownstreamRetransmission:
    def test_retransmits_on_t1_schedule_without_response(self):
        loop, network, proxy, uac, dst = make_env()
        network.send("uac", "P1", make_invite())
        loop.run_until(0.05)
        assert len(dst.requests("INVITE")) == 1
        loop.run_until(0.15)  # first retransmit at ~0.1
        assert len(dst.requests("INVITE")) == 2
        loop.run_until(0.35)  # doubling: next at ~0.3
        assert len(dst.requests("INVITE")) == 3
        assert proxy.metrics.counter("downstream_retransmits").value == 2

    def test_same_branch_on_retransmits(self):
        loop, network, proxy, uac, dst = make_env()
        network.send("uac", "P1", make_invite())
        loop.run_until(0.5)
        branches = {m.top_via.branch for m in dst.requests("INVITE")}
        assert len(branches) == 1

    def test_any_response_stops_retransmission(self):
        loop, network, proxy, uac, dst = make_env()
        network.send("uac", "P1", make_invite())
        loop.run_until(0.05)
        forwarded = dst.requests("INVITE")[0]
        network.send("dst", "P1", SipResponse.for_request(forwarded, 180,
                                                          to_tag="t"))
        loop.run_until(2.0)
        assert len(dst.requests("INVITE")) == 1
        assert proxy.metrics.counter("downstream_retransmits").value == 0

    def test_gives_up_at_timer_b(self):
        loop, network, proxy, uac, dst = make_env()
        network.send("uac", "P1", make_invite())
        loop.run_until(TIMERS.timer_b + 2.0)
        count = len(dst.requests("INVITE"))
        loop.run_until(TIMERS.timer_b + 10.0)
        assert len(dst.requests("INVITE")) == count  # no further sends

    def test_expiry_cancels_pending_retransmit(self):
        loop, network, proxy, uac, dst = make_env()
        network.send("uac", "P1", make_invite())
        loop.run_until(0.05)
        key = list(proxy._transactions)[0]
        branch = proxy._transactions[key].forwarded_branch
        proxy._expire_transaction(key, branch)
        before = len(dst.requests("INVITE"))
        loop.run_until(3.0)
        assert len(dst.requests("INVITE")) == before

    def test_bye_retransmits_too(self):
        loop, network, proxy, uac, dst = make_env()
        bye = SipRequest.build(
            "BYE", "sip:bob@far.example.net", "sip:alice@near.example.net",
            "sip:bob@far.example.net", "c9", 2, "ft", to_tag="tt",
        )
        bye.add("Route", "<sip:P1;lr>")  # P1 owns this dialog's state
        bye.push_via(Via("uac", branch="z9hG4bK-bye"))
        network.send("uac", "P1", bye)
        loop.run_until(0.15)
        assert len(dst.requests("BYE")) == 2  # initial + one retransmit


class TestViaEma:
    def test_ema_tracks_observed_depth(self):
        loop, network, proxy, uac, dst = make_env()
        deep = make_invite("deep")
        deep.push_via(Via("upstream", branch="z9hG4bK-up"))
        for index in range(40):
            invite = make_invite(f"d{index}")
            invite.push_via(Via("up", branch=f"z9hG4bK-u{index}"))
            network.send("uac", "P1", invite)
            loop.run_until(loop.now + 0.01)
        # All INVITEs arrived with one extra Via: the EMA approaches 1.
        assert proxy._via_ema > 0.7
        t_sf_deep, _ = proxy.state_thresholds()
        assert t_sf_deep < 10360  # depth discount applied

    def test_thresholds_at_depth_zero(self):
        loop, network, proxy, uac, dst = make_env()
        for index in range(40):
            network.send("uac", "P1", make_invite(f"s{index}"))
            loop.run_until(loop.now + 0.01)
        t_sf, t_sl = proxy.state_thresholds()
        assert t_sf == pytest.approx(10360, rel=0.02)
