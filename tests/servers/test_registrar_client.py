"""Tests for REGISTER refresh churn against the proxy registrar."""

import pytest

from repro.core.costmodel import CostModel
from repro.core.static_policy import stateless_policy
from repro.servers.location import LocationService
from repro.servers.proxy import DELIVER_ACTION, ProxyServer, RouteTable
from repro.servers.registrar_client import RegistrarClient
from repro.servers.uac import CallGenerator, CallGeneratorConfig
from repro.servers.uas import AnsweringServer
from repro.sim.events import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStream
from repro.sip.timers import TimerPolicy

TIMERS = TimerPolicy(t1=0.05, t2=0.2, t4=0.2)
AOR = "sip:carol@edge.example.net"


def make_env(refresh_interval=1.0, expires=2.0, lossy=False):
    loop = EventLoop()
    rng = RngStream(7, "regtest")
    network = Network(loop, rng.spawn("net"))
    location = LocationService()
    proxy = ProxyServer(
        "P1", loop, network,
        route_table=RouteTable().add("edge.example.net", DELIVER_ACTION),
        location=location,
        policy=stateless_policy(),
        cost_model=CostModel(scale=1.0),
        timers=TIMERS,
        rng=rng,
        noise_sigma=0.0,
    )
    uas = AnsweringServer("uas1", loop, network, timers=TIMERS, rng=rng)
    client = RegistrarClient(
        "uas1-reg", loop, network, registrar="P1", aors=[AOR],
        refresh_interval=refresh_interval, expires=expires,
        timers=TIMERS, rng=rng,
    )
    if lossy:
        network.set_link("uas1-reg", "P1", loss=0.4)
    return loop, proxy, uas, client, location


class TestRegistrationLifecycle:
    def test_initial_register_binds(self):
        loop, proxy, uas, client, location = make_env()
        client.start()
        loop.run_until(0.1)
        binding = location.lookup(AOR, now=loop.now)
        assert binding is not None
        # Contact header wins over the packet source for the binding.
        assert binding.node == "uas1-reg"
        assert client.registers_confirmed == 1

    def test_refresh_keeps_binding_alive(self):
        loop, proxy, uas, client, location = make_env(
            refresh_interval=1.0, expires=1.5
        )
        client.start()
        loop.run_until(10.0)
        assert location.lookup(AOR, now=loop.now) is not None
        assert client.registers_confirmed >= 8

    def test_stopping_lets_binding_expire(self):
        loop, proxy, uas, client, location = make_env(
            refresh_interval=1.0, expires=1.5
        )
        client.start()
        loop.run_until(2.0)
        client.stop()
        loop.run_until(10.0)
        assert location.lookup(AOR, now=loop.now) is None

    def test_lossy_registrar_path_retries(self):
        loop, proxy, uas, client, location = make_env(lossy=True)
        client.start()
        loop.run_until(5.0)
        # Non-INVITE Timer E retransmissions push the REGISTER through.
        assert client.registers_confirmed >= 1

    def test_validation(self):
        loop = EventLoop()
        network = Network(loop)
        with pytest.raises(ValueError):
            RegistrarClient("r", loop, network, "P1", aors=[])
        with pytest.raises(ValueError):
            RegistrarClient("r", loop, network, "P1", aors=["sip:a@b"],
                            refresh_interval=0)

    def test_start_idempotent(self):
        loop, proxy, uas, client, location = make_env()
        client.start()
        client.start()
        loop.run_until(0.2)
        assert client.metrics.counter("registers_sent").value == 1


class TestCallsAgainstChurn:
    def test_calls_fail_404_after_expiry(self):
        loop, proxy, uas, client, location = make_env(
            refresh_interval=1.0, expires=1.5
        )
        client.start()
        loop.run_until(2.0)
        client.stop()
        loop.run_until(6.0)  # binding gone
        rng = RngStream(9, "caller")
        caller = CallGenerator(
            "uac1", loop, proxy.network,
            CallGeneratorConfig(rate=50, first_hop="P1", destinations=[AOR]),
            timers=TIMERS, rng=rng,
        )
        caller.start()
        loop.run_until(7.0)
        caller.stop()
        loop.run_until(8.0)
        assert caller.calls_failed > 0
        assert caller.metrics.counter("failure_invite_404").value > 0

    def test_calls_succeed_while_registered(self):
        loop, proxy, uas, client, location = make_env(
            refresh_interval=1.0, expires=3.0
        )
        client.start()
        loop.run_until(0.5)
        # Re-point the binding at the actual answering server so calls
        # complete end-to-end.
        location.register(AOR, "uas1")
        rng = RngStream(9, "caller")
        caller = CallGenerator(
            "uac1", loop, proxy.network,
            CallGeneratorConfig(rate=50, first_hop="P1", destinations=[AOR]),
            timers=TIMERS, rng=rng,
        )
        caller.start()
        loop.run_until(2.0)
        caller.stop()
        loop.run_until(3.0)
        assert caller.calls_completed == caller.calls_attempted
