"""UAC <-> UAS integration without a proxy (direct first hop).

The call generator's first hop can be any node; pointing it straight at
the answering server exercises the whole client/server call state
machinery in isolation from proxy logic.
"""

import pytest

from repro.servers.uac import CallGenerator, CallGeneratorConfig
from repro.servers.uas import AnsweringServer
from repro.sim.events import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStream
from repro.sip.timers import TimerPolicy

TIMERS = TimerPolicy(t1=0.05, t2=0.2, t4=0.2)


def make_pair(rate=50.0, hold_time=0.0, arrival="uniform", loss=None):
    loop = EventLoop()
    rng = RngStream(5, "uac-uas")
    network = Network(loop, rng.spawn("net"))
    uas = AnsweringServer("uas1", loop, network, timers=TIMERS, rng=rng)
    config = CallGeneratorConfig(
        rate=rate,
        first_hop="uas1",
        destinations=["sip:bob@edge.example.net"],
        arrival=arrival,
        hold_time=hold_time,
    )
    uac = CallGenerator("uac1", loop, network, config, timers=TIMERS, rng=rng)
    if loss:
        network.set_link("uac1", "uas1", loss=loss)
    return loop, uac, uas


class TestHappyPath:
    def test_calls_complete(self):
        loop, uac, uas = make_pair()
        uac.start()
        loop.run_until(2.0)
        uac.stop()
        loop.run_until(3.0)
        assert uac.calls_attempted == pytest.approx(100, abs=2)
        assert uac.calls_completed == uac.calls_attempted
        assert uac.calls_failed == 0
        assert uas.calls_received == uac.calls_attempted
        assert uas.calls_completed == uac.calls_attempted

    def test_response_times_near_rtt(self):
        loop, uac, uas = make_pair()
        uac.start()
        loop.run_until(2.0)
        stats = uac.metrics.histogram("invite_response_time")
        # Two network traversals at 0.25 ms each (the 180 then 200 both
        # arrive; response time is INVITE->200).
        assert stats.mean == pytest.approx(0.0005, rel=0.2)

    def test_no_100_without_stateful_proxy(self):
        loop, uac, uas = make_pair()
        uac.start()
        loop.run_until(1.0)
        assert uac.calls_with_100 == 0

    def test_hold_time_delays_bye(self):
        loop, uac, uas = make_pair(rate=10, hold_time=0.5)
        uac.start()
        loop.run_until(0.3)
        uac.stop()
        assert uas.calls_received >= 1
        assert uas.calls_completed == 0  # still holding
        loop.run_until(2.0)
        assert uas.calls_completed == uas.calls_received

    def test_uniform_vs_poisson_counts(self):
        loop, uac, _ = make_pair(rate=100, arrival="uniform")
        uac.start()
        loop.run_until(1.0)
        uniform_count = uac.calls_attempted
        loop2, uac2, _ = make_pair(rate=100, arrival="poisson")
        uac2.start()
        loop2.run_until(1.0)
        assert uniform_count == pytest.approx(100, abs=1)
        assert uac2.calls_attempted == pytest.approx(100, rel=0.35)

    def test_max_calls_stops_generation(self):
        loop, uac, uas = make_pair(rate=1000)
        uac.config.max_calls = 5
        uac.start()
        loop.run_until(5.0)
        assert uac.calls_attempted == 5

    def test_stop_is_idempotent_and_start_too(self):
        loop, uac, _ = make_pair(rate=10)
        uac.start()
        uac.start()
        loop.run_until(0.5)
        first = uac.calls_attempted
        uac.stop()
        uac.stop()
        loop.run_until(1.0)
        assert uac.calls_attempted == first


class TestLossRecovery:
    def test_retransmissions_recover_lost_invites(self):
        loop, uac, uas = make_pair(rate=40, loss=0.2)
        uac.start()
        loop.run_until(3.0)
        uac.stop()
        loop.run_until(8.0)
        # With 20% loss the transaction layer retries; nearly all calls
        # must still complete.
        assert uac.calls_attempted > 0
        completed_ratio = uac.calls_completed / uac.calls_attempted
        assert completed_ratio > 0.95
        assert uac.retransmissions() > 0

    def test_lossless_run_has_no_retransmissions(self):
        loop, uac, _ = make_pair(rate=50)
        uac.start()
        loop.run_until(2.0)
        assert uac.retransmissions() == 0

    def test_ok_retransmitted_until_ack(self):
        """Losing the ACK path forces the UAS to retransmit its 200."""
        loop, uac, uas = make_pair(rate=20, loss=0.3)
        uac.start()
        loop.run_until(3.0)
        uac.stop()
        loop.run_until(8.0)
        assert uas.metrics.counter("ok_retransmits").value > 0
        # And the UAC re-ACKs retransmitted 200s.
        assert (
            uas.metrics.counter("acks_received").value
            + uas.metrics.counter("calls_never_acked").value
            >= uas.calls_received * 0.9
        )


class TestRateChanges:
    def test_set_rate_takes_effect(self):
        loop, uac, _ = make_pair(rate=10, arrival="uniform")
        uac.start()
        loop.run_until(1.0)
        uac.set_rate(100)
        loop.run_until(2.0)
        # ~10 calls in the first second; the new rate kicks in after the
        # already-scheduled arrival fires, so ~90 more in the second.
        assert uac.calls_attempted == pytest.approx(101, abs=6)

    def test_bad_rate_rejected(self):
        loop, uac, _ = make_pair()
        with pytest.raises(ValueError):
            uac.set_rate(0)


class TestConfigValidation:
    def test_bad_configs(self):
        with pytest.raises(ValueError):
            CallGeneratorConfig(rate=0, first_hop="x", destinations=["sip:a@b"])
        with pytest.raises(ValueError):
            CallGeneratorConfig(rate=1, first_hop="x", destinations=[])
        with pytest.raises(ValueError):
            CallGeneratorConfig(
                rate=1, first_hop="x", destinations=["sip:a@b"], arrival="bursty"
            )
        with pytest.raises(ValueError):
            CallGeneratorConfig(
                rate=1, first_hop="x", destinations=["sip:a@b"], hold_time=-1
            )
