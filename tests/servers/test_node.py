"""Tests for the base node and SIP message cost classification."""

import pytest

from repro.core.costmodel import CostModel, MessageKind
from repro.core.overload import OverloadReport
from repro.servers.node import Node, classify_sip_kind
from repro.sip.headers import Via
from repro.sip.message import SipRequest, SipResponse


class EchoNode(Node):
    """Concrete node that records handled payloads."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.handled = []

    def handle_message(self, payload, src):
        self.handled.append((payload, src))


def make_request(method="INVITE", vias=1):
    request = SipRequest.build(
        method, "sip:u@x.com", "sip:a@y.com", "sip:u@x.com", "c1",
        1 if method == "INVITE" else 2, "ft",
    )
    request.set("CSeq", f"{request.cseq.number} {method}")
    for index in range(vias):
        request.push_via(Via(f"h{index}", branch=f"z9hG4bK{index}"))
    return request


class TestClassification:
    @pytest.mark.parametrize(
        "method,kind",
        [
            ("INVITE", MessageKind.INVITE),
            ("ACK", MessageKind.ACK),
            ("BYE", MessageKind.BYE),
            ("REGISTER", MessageKind.REGISTER),
            ("OPTIONS", MessageKind.GENERIC),
        ],
    )
    def test_requests(self, method, kind):
        assert classify_sip_kind(make_request(method)) == kind

    @pytest.mark.parametrize(
        "status,cseq_method,kind",
        [
            (100, "INVITE", MessageKind.PROVISIONAL_100),
            (180, "INVITE", MessageKind.PROVISIONAL_180),
            (200, "INVITE", MessageKind.FINAL_200_INVITE),
            (200, "BYE", MessageKind.FINAL_200_BYE),
            (486, "INVITE", MessageKind.FINAL_200_INVITE),
        ],
    )
    def test_responses(self, status, cseq_method, kind):
        request = make_request("INVITE" if cseq_method == "INVITE" else "BYE")
        response = SipResponse.for_request(request, status)
        assert classify_sip_kind(response) == kind


class TestCpuBypass:
    def test_endpoint_nodes_process_instantly(self, loop, network, rng):
        node = EchoNode("e", loop, network, rng=rng, model_cpu=False)
        network.send("x", "e", make_request())
        loop.run()
        assert len(node.handled) == 1
        assert node.cpu.busy_seconds == 0.0

    def test_modeled_nodes_accrue_cpu(self, loop, network, rng):
        node = EchoNode("m", loop, network, rng=rng, model_cpu=True,
                        noise_sigma=0.0)
        network.send("x", "m", make_request())
        loop.run()
        assert len(node.handled) == 1
        assert node.cpu.busy_seconds > 0

    def test_control_messages_are_cheap(self, loop, network, rng):
        node = EchoNode("c", loop, network, rng=rng, model_cpu=True,
                        noise_sigma=0.0)
        network.send("x", "c", OverloadReport("x", True, 1.0, 1))
        loop.run()
        control_cost = node.cpu.busy_seconds
        node2 = EchoNode("c2", loop, network, rng=rng, model_cpu=True,
                         noise_sigma=0.0)
        network.send("x", "c2", make_request())
        loop.run()
        assert control_cost < node2.cpu.busy_seconds / 3

    def test_via_count_raises_cost(self, loop, network, rng):
        shallow = EchoNode("s1", loop, network, rng=rng, noise_sigma=0.0)
        deep = EchoNode("s2", loop, network, rng=rng, noise_sigma=0.0)
        network.send("x", "s1", make_request(vias=1))
        network.send("x", "s2", make_request(vias=4))
        loop.run()
        assert deep.cpu.busy_seconds > shallow.cpu.busy_seconds

    def test_drop_hook_called_on_admission_reject(self, loop, network, rng):
        dropped = []

        class Dropper(EchoNode):
            def on_rejected(self, payload, src):
                dropped.append(payload)

        node = Dropper("d", loop, network, rng=rng, noise_sigma=0.0,
                       max_queue_delay=1e-9)
        # Saturate: the first message occupies the CPU; the rest exceed
        # the (tiny) admission bound.
        for _ in range(3):
            network.send("x", "d", make_request())
        loop.run()
        assert node.metrics.counter("messages_dropped_overload").value >= 1
        assert len(dropped) >= 1


class TestTick:
    def test_tick_records_utilization(self, loop, network, rng):
        node = EchoNode("t", loop, network, rng=rng, noise_sigma=0.0)
        network.send("x", "t", make_request())
        loop.run()
        loop.run_until(1.0)
        node.tick(1.0)
        assert len(node.cpu.utilization_series) == 1

    def test_tick_noop_for_endpoints(self, loop, network, rng):
        node = EchoNode("t2", loop, network, rng=rng, model_cpu=False)
        node.tick(1.0)
        assert len(node.cpu.utilization_series) == 0
