"""Edge-case proxy tests: malformed requests, odd flows, bookkeeping."""

import pytest

from repro.core.costmodel import CostModel
from repro.core.static_policy import stateful_policy, stateless_policy
from repro.servers.location import LocationService
from repro.servers.proxy import (
    DELIVER_ACTION,
    ProxyConfig,
    ProxyServer,
    RouteTable,
)
from repro.sim.events import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStream
from repro.sip.headers import Via
from repro.sip.message import SipRequest, SipResponse
from repro.sip.timers import TimerPolicy

TIMERS = TimerPolicy(t1=0.1, t2=0.4, t4=0.4)


class Stub:
    def __init__(self, name, network):
        self.name = name
        self.received = []
        network.register(name, self)

    def receive(self, packet):
        self.received.append(packet.payload)

    def responses(self, status=None):
        out = [m for m in self.received if isinstance(m, SipResponse)]
        return [m for m in out if status is None or m.status == status]

    def requests(self, method=None):
        out = [m for m in self.received if isinstance(m, SipRequest)]
        return [m for m in out if method is None or m.method == method]


def make_env(policy=None, txn_linger=0.5):
    loop = EventLoop()
    rng = RngStream(77, "edge")
    network = Network(loop, rng.spawn("net"))
    uac = Stub("uac", network)
    dst = Stub("dst", network)
    location = LocationService()
    location.register("sip:bob@far.example.net", "dst")
    proxy = ProxyServer(
        "P1", loop, network,
        route_table=RouteTable().add("far.example.net", DELIVER_ACTION),
        location=location,
        policy=policy or stateful_policy(),
        config=ProxyConfig(txn_linger=txn_linger),
        cost_model=CostModel(scale=1.0),
        timers=TIMERS,
        rng=rng,
        noise_sigma=0.0,
    )
    return loop, network, proxy, uac, dst


def make_invite(call_id="c1", branch=None):
    invite = SipRequest.build(
        "INVITE", "sip:bob@far.example.net", "sip:alice@near.example.net",
        "sip:bob@far.example.net", call_id, 1, "ft",
    )
    invite.push_via(Via("uac", branch=branch or f"z9hG4bK-{call_id}"))
    return invite


class TestMalformedRequests:
    def test_missing_max_forwards_rejected_483(self):
        loop, network, proxy, uac, dst = make_env()
        invite = make_invite()
        invite.remove("Max-Forwards")
        network.send("uac", "P1", invite)
        loop.run_until(0.2)
        assert len(uac.responses(483)) == 1
        assert dst.requests("INVITE") == []

    def test_garbage_max_forwards_rejected_483(self):
        loop, network, proxy, uac, dst = make_env()
        invite = make_invite()
        invite.set("Max-Forwards", "plenty")
        network.send("uac", "P1", invite)
        loop.run_until(0.2)
        assert len(uac.responses(483)) == 1

    def test_unknown_payload_type_counted(self):
        loop, network, proxy, uac, dst = make_env()
        network.send("uac", "P1", {"not": "sip"})
        loop.run_until(0.2)
        assert proxy.metrics.counter("unknown_payloads").value == 1


class TestTransactionLifetime:
    def test_linger_expires_completed_transactions(self):
        loop, network, proxy, uac, dst = make_env(txn_linger=0.3)
        invite = make_invite()
        network.send("uac", "P1", invite)
        loop.run_until(0.05)
        forwarded = dst.requests("INVITE")[0]
        network.send("dst", "P1", SipResponse.for_request(forwarded, 200,
                                                          to_tag="t"))
        loop.run_until(0.1)
        assert proxy.active_transactions == 1
        loop.run_until(0.6)  # past the linger
        assert proxy.active_transactions == 0

    def test_retransmit_after_expiry_forwarded_fresh(self):
        """Once the stored transaction is gone, a very late retransmit
        is treated as a new request (stateless proxies behave this way
        throughout)."""
        loop, network, proxy, uac, dst = make_env(txn_linger=0.2)
        invite = make_invite(branch="z9hG4bK-late")
        network.send("uac", "P1", invite)
        loop.run_until(0.05)
        forwarded = dst.requests("INVITE")[0]
        network.send("dst", "P1", SipResponse.for_request(forwarded, 200,
                                                          to_tag="t"))
        loop.run_until(1.0)
        assert proxy.active_transactions == 0
        network.send("uac", "P1", invite.copy())
        loop.run_until(1.05)
        invites = dst.requests("INVITE")
        assert len(invites) >= 2
        # The late copy created a *fresh* transaction (new branch).
        assert invites[-1].top_via.branch != invites[0].top_via.branch


class TestAck2xxEndToEnd:
    def test_ack_for_2xx_passes_through(self):
        """The ACK for a 2xx has a fresh branch and is not consumed by
        the proxy's INVITE transaction (RFC 3261 16.7/17.1.1.2)."""
        loop, network, proxy, uac, dst = make_env()
        network.send("uac", "P1", make_invite("ack-call"))
        loop.run_until(0.05)
        ack = SipRequest.build(
            "ACK", "sip:bob@far.example.net", "sip:alice@near.example.net",
            "sip:bob@far.example.net", "ack-call", 1, "ft", to_tag="tt",
        )
        ack.set("CSeq", "1 ACK")
        ack.push_via(Via("uac", branch="z9hG4bK-fresh-ack"))
        network.send("uac", "P1", ack)
        loop.run_until(0.2)
        assert len(dst.requests("ACK")) == 1


class TestStatelessResponses:
    def test_response_for_unknown_branch_forwarded_by_via(self):
        """A stateless proxy forwards any response whose top Via is its
        own, even with no matching transaction."""
        loop, network, proxy, uac, dst = make_env(policy=stateless_policy())
        network.send("uac", "P1", make_invite("sl-call"))
        loop.run_until(0.05)
        forwarded = dst.requests("INVITE")[0]
        response = SipResponse.for_request(forwarded, 200, to_tag="t")
        network.send("dst", "P1", response)
        loop.run_until(0.2)
        assert len(uac.responses(200)) == 1


class TestUpstreamBookkeeping:
    def test_upstream_shares_decay(self):
        loop, network, proxy, uac, dst = make_env()
        for index in range(8):
            network.send("uac", "P1", make_invite(f"d{index}"))
        loop.run_until(0.2)
        assert proxy._upstream_new_calls.get("uac", 0) > 0
        # Several monitor periods later the share decays away entirely.
        loop.run_until(10.0)
        assert proxy._upstream_new_calls.get("uac", 0) == 0
