"""Unit tests for the answering server (UAS)."""

import pytest

from repro.servers.uas import AnsweringServer
from repro.sim.events import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStream
from repro.sip.headers import Via
from repro.sip.message import SipRequest, SipResponse
from repro.sip.timers import TimerPolicy

TIMERS = TimerPolicy(t1=0.05, t2=0.2, t4=0.2)


class Client:
    """Records responses the UAS sends back."""

    def __init__(self, name, network):
        self.name = name
        self.received = []
        network.register(name, self)

    def receive(self, packet):
        self.received.append(packet.payload)

    def statuses(self):
        return [m.status for m in self.received if isinstance(m, SipResponse)]


def make_env(ring_delay=0.0):
    loop = EventLoop()
    network = Network(loop, RngStream(3, "uas-test").spawn("net"))
    uas = AnsweringServer("uas", loop, network, timers=TIMERS,
                          ring_delay=ring_delay, rng=RngStream(3, "uas"))
    client = Client("cli", network)
    return loop, network, uas, client


def make_invite(call_id="c1", branch="z9hG4bKi1"):
    invite = SipRequest.build(
        "INVITE", "sip:bob@x.com", "sip:alice@y.com", "sip:bob@x.com",
        call_id, 1, "ft",
    )
    invite.push_via(Via("cli", branch=branch))
    return invite


def make_ack(call_id="c1", to_tag=None):
    ack = SipRequest.build(
        "ACK", "sip:bob@x.com", "sip:alice@y.com", "sip:bob@x.com",
        call_id, 1, "ft", to_tag=to_tag,
    )
    ack.set("CSeq", "1 ACK")
    ack.push_via(Via("cli", branch="z9hG4bKa1"))
    return ack


def make_bye(call_id="c1"):
    bye = SipRequest.build(
        "BYE", "sip:bob@x.com", "sip:alice@y.com", "sip:bob@x.com",
        call_id, 2, "ft", to_tag="tt",
    )
    bye.push_via(Via("cli", branch="z9hG4bKb1"))
    return bye


class TestAnswerFlow:
    def test_invite_answered_180_then_200(self):
        loop, network, uas, client = make_env()
        network.send("cli", "uas", make_invite())
        loop.run_until(0.01)
        assert client.statuses() == [180, 200]
        assert uas.calls_received == 1

    def test_ring_delay_defers_200(self):
        loop, network, uas, client = make_env(ring_delay=0.5)
        network.send("cli", "uas", make_invite())
        loop.run_until(0.1)
        assert client.statuses() == [180]
        loop.run_until(0.7)
        assert client.statuses()[-1] == 200

    def test_200_carries_to_tag(self):
        loop, network, uas, client = make_env()
        network.send("cli", "uas", make_invite())
        loop.run_until(0.01)
        ok = [m for m in client.received if m.status == 200][0]
        assert ok.to.tag is not None

    def test_bye_completes_call(self):
        loop, network, uas, client = make_env()
        network.send("cli", "uas", make_invite())
        loop.run_until(0.01)
        network.send("cli", "uas", make_ack())
        loop.run_until(0.02)
        network.send("cli", "uas", make_bye())
        loop.run_until(0.03)
        assert client.statuses()[-1] == 200
        assert uas.calls_completed == 1


class TestRetransmissionBehaviour:
    def test_200_retransmitted_until_ack(self):
        loop, network, uas, client = make_env()
        network.send("cli", "uas", make_invite())
        loop.run_until(0.26)  # retransmits at 0.05, 0.15 (cap 0.2)...
        count_200 = client.statuses().count(200)
        assert count_200 >= 3
        network.send("cli", "uas", make_ack())
        loop.run_until(0.30)
        settled = client.statuses().count(200)
        loop.run_until(1.5)
        assert client.statuses().count(200) == settled

    def test_retransmitted_invite_replays_200(self):
        loop, network, uas, client = make_env()
        invite = make_invite()
        network.send("cli", "uas", invite)
        loop.run_until(0.01)
        network.send("cli", "uas", invite.copy())
        loop.run_until(0.02)
        assert uas.calls_received == 1  # not double counted
        assert client.statuses().count(200) >= 2

    def test_gives_up_after_timer_h(self):
        loop, network, uas, client = make_env()
        network.send("cli", "uas", make_invite())
        loop.run_until(64 * TIMERS.t1 + 0.5)
        assert uas.metrics.counter("calls_never_acked").value == 1
        # Call record cleaned up: a late BYE is treated as a duplicate.
        network.send("cli", "uas", make_bye())
        loop.run_until(loop.now + 0.1)
        assert uas.metrics.counter("bye_duplicates").value == 1

    def test_duplicate_bye_still_answered(self):
        loop, network, uas, client = make_env()
        network.send("cli", "uas", make_invite())
        loop.run_until(0.01)
        network.send("cli", "uas", make_ack())
        bye = make_bye()
        network.send("cli", "uas", bye)
        network.send("cli", "uas", bye.copy())
        loop.run_until(0.05)
        assert uas.calls_completed == 1
        assert client.statuses().count(200) >= 3  # INVITE 200 + 2 BYE 200s


class TestEdgeCases:
    def test_unknown_method_gets_200(self):
        loop, network, uas, client = make_env()
        options = SipRequest.build(
            "OPTIONS", "sip:bob@x.com", "sip:a@y.com", "sip:bob@x.com",
            "c9", 1, "ft",
        )
        options.push_via(Via("cli", branch="z9hG4bKo"))
        network.send("cli", "uas", options)
        loop.run_until(0.01)
        assert client.statuses() == [200]

    def test_stray_response_counted(self):
        loop, network, uas, client = make_env()
        stray = SipResponse(200)
        stray.add("Via", "SIP/2.0/UDP cli;branch=z9hG4bKx")
        network.send("cli", "uas", stray)
        loop.run_until(0.01)
        assert uas.metrics.counter("stray_responses").value == 1

    def test_unroutable_via_counted(self):
        loop, network, uas, client = make_env()
        invite = make_invite()
        invite.remove("Via")
        invite.add("Via", "SIP/2.0/UDP ghost-node;branch=z9hG4bKg")
        network.send("cli", "uas", invite)
        loop.run_until(0.01)
        assert uas.metrics.counter("unroutable_responses").value == 1
