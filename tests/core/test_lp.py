"""Tests for the section 4.1 LP, including feasibility properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import series_optimal_throughput
from repro.core.lp import (
    FlowPathLP,
    LPSolution,
    StateDistributionLP,
    solve_fixed_routing,
    solve_free_routing,
)
from repro.core.topology import (
    Topology,
    internal_external_topology,
    parallel_fork_topology,
    series_topology,
    two_series_topology,
)

T_SF = 10360.0
T_SL = 12300.0


class TestPaperNumbers:
    """Section 4.1's worked example."""

    def test_two_series_optimum(self):
        solution = solve_free_routing(two_series_topology(T_SF, T_SL))
        # Paper: "a total throughput of 11,240 cps".
        assert solution.throughput == pytest.approx(11247, abs=5)

    def test_two_series_even_split(self):
        solution = solve_free_routing(two_series_topology(T_SF, T_SL))
        # Paper: "each server maintains 5,620 cps statefully".
        assert solution.stateful_rate["S1"] == pytest.approx(5623, abs=10)
        assert solution.stateful_rate["S2"] == pytest.approx(5623, abs=10)

    def test_optimum_beats_static(self):
        solution = solve_free_routing(two_series_topology(T_SF, T_SL))
        assert solution.throughput > T_SF  # static ceiling

    def test_both_servers_fully_utilized(self):
        solution = solve_free_routing(two_series_topology(T_SF, T_SL))
        for node in ("S1", "S2"):
            assert solution.utilization[node] == pytest.approx(1.0, abs=1e-6)

    def test_fixed_routing_agrees_on_series(self):
        """With a single path, routing freedom adds nothing."""
        topo = two_series_topology(T_SF, T_SL)
        free = solve_free_routing(topo)
        fixed = solve_fixed_routing(topo)
        assert fixed.throughput == pytest.approx(free.throughput, rel=1e-6)

    def test_closed_form_matches_lp(self):
        lp = solve_free_routing(two_series_topology(T_SF, T_SL))
        closed, _ = series_optimal_throughput([(T_SF, T_SL)] * 2)
        assert lp.throughput == pytest.approx(closed, rel=1e-6)


class TestStructure:
    def test_solution_verifies(self):
        solve_free_routing(two_series_topology(T_SF, T_SL)).verify()

    def test_state_coverage_on_series(self):
        """Everything admitted must be stateful somewhere (t_ASF_kz = 0)."""
        solution = solve_free_routing(series_topology([(T_SF, T_SL)] * 3))
        total_state = sum(solution.stateful_rate.values())
        assert total_state == pytest.approx(solution.throughput, rel=1e-6)

    def test_single_node(self):
        solution = solve_free_routing(series_topology([(T_SF, T_SL)]))
        assert solution.throughput == pytest.approx(T_SF, rel=1e-6)

    def test_edge_values_exposed(self):
        solution = solve_free_routing(two_series_topology(T_SF, T_SL))
        assert ("S1", "S2") in solution.edge_values
        parts = solution.edge_values[("S1", "S2")]
        assert set(parts) == {"fasf", "sf", "asf"}

    def test_requires_flows_for_fixed_routing(self):
        topo = Topology()
        topo.add_node("a", T_SF, T_SL)
        topo.mark_entry("a")
        topo.mark_exit("a")
        with pytest.raises(ValueError):
            FlowPathLP(topo)


class TestHeterogeneous:
    def test_fast_node_takes_more_state(self):
        topo = series_topology([(11000, 12300), (9000, 12300)])
        solution = solve_free_routing(topo)
        assert solution.stateful_rate["S1"] > solution.stateful_rate["S2"]

    def test_degenerate_state_placement(self):
        """When one node is far slower, nearly all state moves to the
        fast one (the slow node keeps only what its slack allows)."""
        topo = series_topology([(12000, 12300), (6200, 12300)])
        solution = solve_free_routing(topo)
        assert solution.stateful_rate["S1"] > 0.95 * solution.throughput
        assert solution.throughput >= 12000 - 1e-6
        assert solution.throughput <= 12300 + 1e-6


class TestInternalExternal:
    """Figure 7's LP predictions."""

    def test_80_20_mix_near_paper_prediction(self):
        topo = internal_external_topology(T_SF, T_SL, external_fraction=0.8)
        solution = solve_fixed_routing(topo)
        # Paper: "the LP predicts a value of 11,960 cps" at the 80/20 mix.
        assert solution.throughput == pytest.approx(11960, rel=0.02)

    def test_fraction_zero_is_single_server(self):
        topo = internal_external_topology(T_SF, T_SL, external_fraction=0.0)
        solution = solve_fixed_routing(topo)
        assert solution.throughput == pytest.approx(T_SF, rel=1e-6)

    def test_fraction_one_is_two_series(self):
        topo = internal_external_topology(T_SF, T_SL, external_fraction=1.0)
        solution = solve_fixed_routing(topo)
        closed, _ = series_optimal_throughput([(T_SF, T_SL)] * 2)
        assert solution.throughput == pytest.approx(closed, rel=1e-6)

    def test_throughput_peaks_at_interior_fraction(self):
        """Paper: maximal throughput peaks around an 80/20 mix."""
        values = {}
        for fraction in (0.0, 0.4, 0.8, 1.0):
            topo = internal_external_topology(T_SF, T_SL, fraction)
            values[fraction] = solve_fixed_routing(topo).throughput
        assert values[0.8] > values[0.0]
        assert values[0.8] > values[1.0]
        assert values[0.8] >= values[0.4]

    def test_internal_state_stays_at_s1(self):
        topo = internal_external_topology(T_SF, T_SL, external_fraction=0.5)
        solution = solve_fixed_routing(topo)
        assert solution.flow_state_rates[("internal", "S1")] == pytest.approx(
            solution.flow_rates["internal"], rel=1e-6
        )


class TestParallelFork:
    def test_front_relinquishes_all_state(self):
        """Paper (section 6.2): the first server should relinquish all of
        its state to the two servers it forks to."""
        topo = parallel_fork_topology((T_SF, T_SL), (T_SF, T_SL), (T_SF, T_SL))
        solution = solve_fixed_routing(topo)
        assert solution.stateful_rate["F"] == pytest.approx(0.0, abs=1.0)
        assert solution.throughput == pytest.approx(T_SL, rel=1e-6)

    def test_weak_forks_move_state_to_front(self):
        """Non-homogeneous case: a strong front should hold state."""
        topo = parallel_fork_topology(
            (T_SF, T_SL), (3000, 3600), (3000, 3600)
        )
        solution = solve_fixed_routing(topo)
        assert solution.stateful_rate["F"] > 0
        solution.verify()

    def test_uneven_split(self):
        topo = parallel_fork_topology(
            (T_SF, T_SL), (T_SF, T_SL), (T_SF, T_SL), upper_share=0.9
        )
        solution = solve_fixed_routing(topo)
        solution.verify()
        assert solution.flow_rates["upper"] == pytest.approx(
            0.9 * solution.throughput, rel=1e-6
        )


class TestHopPenalties:
    def test_penalty_reduces_throughput(self):
        topo = two_series_topology(T_SF, T_SL)
        plain = FlowPathLP(topo).solve()
        penalized = FlowPathLP(
            topo, hop_penalties={("main", "S2"): 1.2}
        ).solve()
        assert penalized.throughput < plain.throughput


class TestFeasibilityProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        capacities=st.lists(
            st.tuples(
                st.floats(min_value=1000, max_value=15000),
                st.floats(min_value=1.01, max_value=1.5),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_series_solutions_always_feasible(self, capacities):
        pairs = [(t_sf, t_sf * gap) for t_sf, gap in capacities]
        topo = series_topology(pairs)
        for solution in (solve_free_routing(topo), solve_fixed_routing(topo)):
            solution.verify()
            # Throughput bounded by the weakest stateless node and at
            # least the best static configuration.
            assert solution.throughput <= min(p[1] for p in pairs) * (1 + 1e-6)
            best_static = max(
                min(p[0] if i == j else p[1] for i, p in enumerate(pairs))
                for j in range(len(pairs))
            )
            assert solution.throughput >= best_static * (1 - 1e-6)

    @settings(max_examples=20, deadline=None)
    @given(
        front_sf=st.floats(min_value=2000, max_value=15000),
        fork_sf=st.floats(min_value=2000, max_value=15000),
        share=st.floats(min_value=0.1, max_value=0.9),
    )
    def test_fork_solutions_always_feasible(self, front_sf, fork_sf, share):
        topo = parallel_fork_topology(
            (front_sf, front_sf * 1.2),
            (fork_sf, fork_sf * 1.2),
            (fork_sf, fork_sf * 1.2),
            upper_share=share,
        )
        solution = solve_fixed_routing(topo)
        solution.verify()
        assert solution.throughput > 0
