"""Tests for the server-graph model."""

import pytest

from repro.core.topology import (
    Flow,
    NodeSpec,
    Topology,
    internal_external_topology,
    parallel_fork_topology,
    series_topology,
    two_series_topology,
)


class TestNodeSpec:
    def test_alpha_beta(self):
        spec = NodeSpec("s", 10000, 12500)
        assert spec.alpha == pytest.approx(1e-4)
        assert spec.beta == pytest.approx(8e-5)

    def test_rejects_stateful_faster_than_stateless(self):
        with pytest.raises(ValueError):
            NodeSpec("s", 13000, 12000)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            NodeSpec("s", 0, 100)


class TestConstruction:
    def test_add_node_and_edge(self):
        topo = Topology()
        topo.add_node("a", 100, 120)
        topo.add_node("b", 100, 120)
        topo.add_edge("a", "b")
        assert topo.downstream("a") == ["b"]
        assert topo.upstream("b") == ["a"]

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node("a", 1, 2)
        with pytest.raises(ValueError):
            topo.add_node("a", 1, 2)

    def test_reserved_names_rejected(self):
        topo = Topology()
        with pytest.raises(ValueError):
            topo.add_node("__source__", 1, 2)

    def test_edge_to_unknown_node_rejected(self):
        topo = Topology()
        topo.add_node("a", 1, 2)
        with pytest.raises(KeyError):
            topo.add_edge("a", "ghost")

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_node("a", 1, 2)
        with pytest.raises(ValueError):
            topo.add_edge("a", "a")

    def test_duplicate_edge_ignored(self):
        topo = Topology()
        topo.add_node("a", 1, 2)
        topo.add_node("b", 1, 2)
        topo.add_edge("a", "b")
        topo.add_edge("a", "b")
        assert len(topo.edges) == 1


class TestFlows:
    def test_flow_marks_entry_exit(self):
        topo = two_series_topology(100, 120)
        assert topo.entries == ["S1"]
        assert topo.exits == ["S2"]

    def test_flow_requires_existing_edges(self):
        topo = Topology()
        topo.add_node("a", 1, 2)
        topo.add_node("b", 1, 2)
        with pytest.raises(ValueError):
            topo.add_flow("f", ["a", "b"])

    def test_flow_share_normalization(self):
        topo = internal_external_topology(100, 120, external_fraction=0.8)
        shares = topo.normalized_flow_shares()
        assert shares["external"] == pytest.approx(0.8)
        assert shares["internal"] == pytest.approx(0.2)

    def test_empty_flow_path_rejected(self):
        with pytest.raises(ValueError):
            Flow("f", [])

    def test_normalization_requires_positive_total(self):
        topo = Topology()
        topo.add_node("a", 1, 2)
        topo.add_flow("f", ["a"], share=0.0)
        with pytest.raises(ValueError):
            topo.normalized_flow_shares()


class TestValidation:
    def test_valid_series(self):
        series_topology([(100, 120)] * 3).validate()

    def test_no_entries_rejected(self):
        topo = Topology()
        topo.add_node("a", 1, 2)
        with pytest.raises(ValueError):
            topo.validate()

    def test_cycle_rejected(self):
        topo = Topology()
        for name in "abc":
            topo.add_node(name, 1, 2)
        topo.add_edge("a", "b")
        topo.add_edge("b", "c")
        topo.add_edge("c", "a")
        topo.mark_entry("a")
        topo.mark_exit("c")
        with pytest.raises(ValueError):
            topo.validate()


class TestBuilders:
    def test_series_topology_shape(self):
        topo = series_topology([(100, 120), (90, 110), (80, 100)])
        assert topo.node_names == ["S1", "S2", "S3"]
        assert topo.edges == [("S1", "S2"), ("S2", "S3")]
        assert topo.flows[0].path == ("S1", "S2", "S3")

    def test_series_custom_names(self):
        topo = series_topology([(1, 2)], names=["edge"])
        assert topo.node_names == ["edge"]

    def test_series_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            series_topology([(1, 2)], names=["a", "b"])

    def test_internal_external_degenerate_fractions(self):
        only_internal = internal_external_topology(100, 120, 0.0)
        assert [f.name for f in only_internal.flows] == ["internal"]
        only_external = internal_external_topology(100, 120, 1.0)
        assert [f.name for f in only_external.flows] == ["external"]

    def test_internal_external_bad_fraction(self):
        with pytest.raises(ValueError):
            internal_external_topology(100, 120, 1.5)

    def test_parallel_fork_shape(self):
        topo = parallel_fork_topology((100, 120), (100, 120), (100, 120), 0.5)
        assert sorted(topo.node_names) == ["F", "L", "U"]
        assert set(topo.edges) == {("F", "U"), ("F", "L")}
        assert topo.normalized_flow_shares() == {
            "upper": pytest.approx(0.5), "lower": pytest.approx(0.5),
        }

    def test_parallel_fork_uneven_share(self):
        topo = parallel_fork_topology((1, 2), (1, 2), (1, 2), 0.7)
        assert topo.normalized_flow_shares()["upper"] == pytest.approx(0.7)
