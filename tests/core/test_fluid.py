"""Tests for the fluid overload model, including sim cross-validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costmodel import CostModel, scenario_features
from repro.core.fluid import FluidModel
from repro.harness.runner import run_scenario
from repro.workloads.scenarios import single_proxy


class TestAnalytics:
    def test_capacity_matches_cost_model(self, cost_model):
        model = FluidModel(cost_model)
        assert model.capacity == pytest.approx(10360, rel=1e-6)

    def test_goodput_linear_below_knee(self, cost_model):
        model = FluidModel(cost_model)
        for load in (0, 1000, 5000, 10000):
            assert model.goodput(load) == load

    def test_goodput_declines_past_knee(self, cost_model):
        model = FluidModel(cost_model)
        knee = model.capacity
        values = [model.goodput(knee * f) for f in (1.0, 1.2, 1.5, 2.0)]
        assert values == sorted(values, reverse=True)
        assert values[-1] < values[0]

    def test_collapse_point(self, cost_model):
        model = FluidModel(cost_model)
        assert model.goodput(model.collapse_load * 1.05) == 0.0
        assert model.collapse_load > model.capacity

    def test_slope_is_negative_and_gentle(self, cost_model):
        """Rejects are much cheaper than calls, so the decline past the
        knee is slow -- matching the measured sweeps."""
        model = FluidModel(cost_model)
        slope = model.post_knee_slope()
        assert -0.5 < slope < 0.0

    def test_conservation(self, cost_model):
        model = FluidModel(cost_model)
        load = model.capacity * 1.3
        assert model.goodput(load) + model.rejected(load) == pytest.approx(load)

    def test_amplification_worsens_collapse(self, cost_model):
        plain = FluidModel(cost_model)
        stormy = FluidModel(cost_model, retransmission_amplification=2.0)
        load = plain.capacity * 1.2
        assert stormy.goodput(load) < plain.goodput(load)
        assert stormy.collapse_load < plain.collapse_load

    def test_validation(self, cost_model):
        with pytest.raises(ValueError):
            FluidModel(cost_model, retransmission_amplification=0.5)
        model = FluidModel(cost_model)
        with pytest.raises(ValueError):
            model.goodput(-1)

    @settings(max_examples=40, deadline=None)
    @given(load=st.floats(min_value=0, max_value=40000))
    def test_goodput_bounded_property(self, load):
        model = FluidModel(CostModel())
        goodput = model.goodput(load)
        assert 0.0 <= goodput <= min(load, model.capacity) + 1e-9


class TestSimulationCrossValidation:
    """The simulated single proxy must follow the fluid-model shape."""

    @pytest.fixture(scope="class")
    def sweep(self, ):
        from repro.workloads.scenarios import ScenarioConfig
        from repro.sip.timers import TimerPolicy

        config_kwargs = dict(
            scale=50.0, seed=3, noise_sigma=0.3,
            timers=TimerPolicy(t1=0.05, t2=0.2, t4=0.2),
        )
        points = {}
        for factor in (0.8, 1.1, 1.4):
            load = 10360 * factor
            scenario = single_proxy(
                load, mode="transaction_stateful",
                config=ScenarioConfig(**config_kwargs),
            )
            points[factor] = run_scenario(scenario, duration=3.0, warmup=1.0)
        return points

    def test_below_knee_full_goodput(self, sweep):
        assert sweep[0.8].goodput_ratio > 0.9

    def test_past_knee_declines_not_cliff(self, sweep):
        """Past the knee, goodput stays positive and well above zero --
        the gentle fluid-model decline, not a cliff."""
        model = FluidModel(CostModel())
        measured = sweep[1.4].throughput_cps
        predicted = model.goodput(10360 * 1.4)
        # Within a broad band of the prediction (retransmission noise).
        assert measured > 0.4 * predicted
        assert measured < 1.25 * model.capacity

    def test_monotone_decline_in_overload(self, sweep):
        assert sweep[1.1].throughput_cps >= sweep[1.4].throughput_cps * 0.95
