"""Tests for the closed-form results of section 4."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import (
    best_static_series,
    optimal_stateful_rate,
    parallel_fork_throughput,
    series_optimal_throughput,
    static_series_throughput,
    utilization_at,
)

T_SF = 10360.0
T_SL = 12300.0


class TestEquation8:
    def test_below_threshold_takes_everything(self):
        assert optimal_stateful_rate(5000, T_SF, T_SL) == 5000

    def test_at_threshold_continuous(self):
        below = optimal_stateful_rate(T_SF - 1e-6, T_SF, T_SL)
        above = optimal_stateful_rate(T_SF + 1e-6, T_SF, T_SL)
        assert below == pytest.approx(above, abs=1e-2)
        assert optimal_stateful_rate(T_SF, T_SF, T_SL) == pytest.approx(T_SF)

    def test_sheds_state_above_threshold(self):
        assert optimal_stateful_rate(11000, T_SF, T_SL) < 11000

    def test_zero_state_at_stateless_limit(self):
        assert optimal_stateful_rate(T_SL, T_SF, T_SL) == pytest.approx(0.0, abs=1e-6)

    def test_clamped_beyond_stateless_limit(self):
        assert optimal_stateful_rate(T_SL * 2, T_SF, T_SL) == 0.0

    def test_utilization_exactly_one_in_shedding_regime(self):
        """In the second case of eq (8), the node runs at exactly 100%."""
        for load in (10500, 11000, 11800, 12300):
            stateful = optimal_stateful_rate(load, T_SF, T_SL)
            utilization = utilization_at(stateful, load - stateful, T_SF, T_SL)
            assert utilization == pytest.approx(1.0, rel=1e-9)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            optimal_stateful_rate(-1, T_SF, T_SL)
        with pytest.raises(ValueError):
            optimal_stateful_rate(1, T_SL, T_SF)  # swapped capacities

    @settings(max_examples=60, deadline=None)
    @given(load=st.floats(min_value=0, max_value=3 * T_SL))
    def test_feasible_and_monotone_properties(self, load):
        stateful = optimal_stateful_rate(load, T_SF, T_SL)
        assert 0.0 <= stateful <= load + 1e-9
        if load > 0:
            utilization = utilization_at(
                stateful, max(0.0, load - stateful), T_SF, T_SL
            )
            if load <= T_SL:
                assert utilization <= 1.0 + 1e-9


class TestSeriesOptimal:
    def test_paper_two_series(self):
        throughput, shares = series_optimal_throughput([(T_SF, T_SL)] * 2)
        assert throughput == pytest.approx(11247, abs=5)
        assert shares[0] == pytest.approx(shares[1], rel=1e-9)
        assert sum(shares) == pytest.approx(throughput, rel=1e-9)

    def test_single_server_degenerates_to_t_sf(self):
        throughput, shares = series_optimal_throughput([(T_SF, T_SL)])
        assert throughput == pytest.approx(T_SF, rel=1e-9)
        assert shares[0] == pytest.approx(T_SF, rel=1e-9)

    def test_more_servers_more_throughput(self):
        pairs = [(T_SF, T_SL)]
        previous = 0.0
        for _ in range(4):
            throughput, _ = series_optimal_throughput(pairs)
            assert throughput > previous
            previous = throughput
            pairs.append((T_SF, T_SL))

    def test_throughput_bounded_by_t_sl(self):
        throughput, _ = series_optimal_throughput([(T_SF, T_SL)] * 10)
        assert throughput < T_SL

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_optimal_throughput([])

    def test_invalid_when_share_negative(self):
        """Depth-penalized heterogeneous chains can break the all-tight
        assumption (these are the two-series thresholds the calibrated
        cost model produces)."""
        with pytest.raises(ValueError):
            series_optimal_throughput([(10638, 12694), (8976, 10537)])

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=6),
        t_sf=st.floats(min_value=1000, max_value=20000),
        gap=st.floats(min_value=1.05, max_value=1.5),
    )
    def test_homogeneous_formula(self, n, t_sf, gap):
        """L = n / (alpha + (n-1) beta) for identical nodes."""
        t_sl = t_sf * gap
        throughput, shares = series_optimal_throughput([(t_sf, t_sl)] * n)
        expected = n / (1.0 / t_sf + (n - 1) / t_sl)
        assert throughput == pytest.approx(expected, rel=1e-9)
        assert all(s == pytest.approx(throughput / n, rel=1e-6) for s in shares)


class TestStaticSeries:
    def test_homogeneous_static_is_t_sf(self):
        assert static_series_throughput([(T_SF, T_SL)] * 2, 0) == T_SF
        assert static_series_throughput([(T_SF, T_SL)] * 2, 1) == T_SF

    def test_stateless_node_can_bind(self):
        capacity = static_series_throughput([(9000, 9500), (11000, 12000)], 1)
        assert capacity == 9500  # node 0's stateless limit binds

    def test_best_static_picks_strongest(self):
        throughput, index = best_static_series([(9000, 12300), (10500, 12300)])
        assert index == 1
        assert throughput == 10500

    def test_index_validation(self):
        with pytest.raises(IndexError):
            static_series_throughput([(1, 2)], 3)

    def test_optimal_never_below_best_static(self):
        pairs = [(T_SF, T_SL), (9000, 11000)]
        static, _ = best_static_series(pairs)
        optimal, _ = series_optimal_throughput(pairs)
        assert optimal >= static


class TestParallelFork:
    def test_front_stateless_balanced(self):
        capacity = parallel_fork_throughput(
            (T_SF, T_SL), (T_SF, T_SL), (T_SF, T_SL), 0.5
        )
        assert capacity == pytest.approx(T_SL)  # front binds

    def test_uneven_split_binds_on_hot_fork(self):
        capacity = parallel_fork_throughput(
            (T_SF, T_SL), (T_SF, T_SL), (T_SF, T_SL), 0.9
        )
        assert capacity == pytest.approx(T_SF / 0.9)

    def test_front_stateful_variant(self):
        capacity = parallel_fork_throughput(
            (T_SF, T_SL), (T_SF, T_SL), (T_SF, T_SL), 0.5, front_stateful=True
        )
        assert capacity == pytest.approx(T_SF)

    def test_share_validation(self):
        with pytest.raises(ValueError):
            parallel_fork_throughput((1, 2), (1, 2), (1, 2), 0.0)


class TestUtilization:
    def test_zero_load_zero_utilization(self):
        assert utilization_at(0, 0, T_SF, T_SL) == 0.0

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            utilization_at(-1, 0, T_SF, T_SL)
