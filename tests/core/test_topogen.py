"""Property battery for the cluster-scale topology generator.

Every sampled (family, size, seed, heterogeneity) instance must
produce a *well-formed* cluster: flows connect an entry to an exit
along real edges, the entry/exit marks agree with the flows, every
node satisfies ``t_sf <= t_sl``, regeneration under the same arguments
is bit-deterministic, and the LP oracle's solution passes
:meth:`LPSolution.verify`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import topogen
from repro.core.costmodel import CostModel
from repro.core.topology import SINK, SOURCE

# One strategy per family so sizes respect the family's minimum.
instances = st.one_of(
    st.tuples(
        st.just("chain"),
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    st.tuples(
        st.just("tree"),
        st.integers(min_value=3, max_value=40),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    st.tuples(
        st.just("mesh"),
        st.integers(min_value=4, max_value=60),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.0, max_value=1.0),
    ),
)


def _snapshot(gen):
    """Everything observable about an instance, as plain data."""
    return (
        gen.spec(),
        [(n.name, n.depth, n.speed, n.delivers, n.t_sf, n.t_sl)
         for n in gen.nodes.values()],
        sorted(gen.topology.edges),
        [(f.name, tuple(f.path), f.share) for f in gen.topology.flows],
        sorted(gen.hop_penalties.items()),
    )


@settings(max_examples=60, deadline=None)
@given(instance=instances)
def test_flows_connect_source_to_sink(instance):
    family, size, seed, het = instance
    gen = topogen.generate(family, size, seed=seed, heterogeneity=het)
    topo = gen.topology
    edges = set(topo.edges)
    assert topo.flows
    for flow in topo.flows:
        assert flow.entry in topo.entries
        assert flow.exit in topo.exits
        for src, dst in zip(flow.path, flow.path[1:]):
            assert (src, dst) in edges
    # The implicit SOURCE/SINK convention: entry nodes admit external
    # arrivals, exit nodes deliver -- neither end is a reserved name.
    assert SOURCE not in topo.node_names
    assert SINK not in topo.node_names


@settings(max_examples=60, deadline=None)
@given(instance=instances)
def test_entries_exits_consistent(instance):
    family, size, seed, het = instance
    gen = topogen.generate(family, size, seed=seed, heterogeneity=het)
    topo = gen.topology
    assert set(topo.entries) == {f.entry for f in topo.flows}
    assert set(topo.exits) == {f.exit for f in topo.flows}
    delivering = {n.name for n in gen.nodes.values() if n.delivers}
    assert delivering == set(topo.exits)


@settings(max_examples=60, deadline=None)
@given(instance=instances)
def test_capacities_ordered(instance):
    family, size, seed, het = instance
    gen = topogen.generate(family, size, seed=seed, heterogeneity=het)
    for node in gen.nodes.values():
        assert 0.0 < node.t_sf <= node.t_sl
        spec = gen.topology.node(node.name)
        assert spec.t_sf == node.t_sf
        assert spec.t_sl == node.t_sl


@settings(max_examples=30, deadline=None)
@given(instance=instances)
def test_bit_deterministic_under_fixed_seed(instance):
    family, size, seed, het = instance
    first = topogen.generate(family, size, seed=seed, heterogeneity=het)
    second = topogen.generate(family, size, seed=seed, heterogeneity=het)
    assert _snapshot(first) == _snapshot(second)


@settings(max_examples=20, deadline=None)
@given(instance=instances)
def test_oracle_solution_verifies(instance):
    family, size, seed, het = instance
    gen = topogen.generate(family, size, seed=seed, heterogeneity=het)
    solution = gen.oracle(backend="simplex")
    solution.verify()
    assert solution.throughput > 0.0


@settings(max_examples=30, deadline=None)
@given(instance=instances)
def test_shares_normalized(instance):
    family, size, seed, het = instance
    gen = topogen.generate(family, size, seed=seed, heterogeneity=het)
    shares = gen.topology.normalized_flow_shares()
    assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)
    assert all(share > 0.0 for share in shares.values())


@settings(max_examples=30, deadline=None)
@given(instance=instances)
def test_heterogeneity_shapes_speeds_not_structure(instance):
    """het changes node speeds only; graph shape is drawn first."""
    family, size, seed, het = instance
    flat = topogen.generate(family, size, seed=seed, heterogeneity=0.0)
    skewed = topogen.generate(family, size, seed=seed, heterogeneity=het)
    assert sorted(flat.topology.edges) == sorted(skewed.topology.edges)
    assert (
        [(f.name, tuple(f.path)) for f in flat.topology.flows]
        == [(f.name, tuple(f.path)) for f in skewed.topology.flows]
    )
    assert all(n.speed == 1.0 for n in flat.nodes.values())


class TestArguments:
    def test_unknown_family(self):
        with pytest.raises(ValueError):
            topogen.generate("ring", 8)

    @pytest.mark.parametrize(
        "family,too_small", [("chain", 1), ("tree", 2), ("mesh", 3)]
    )
    def test_size_floor(self, family, too_small):
        with pytest.raises(ValueError):
            topogen.generate(family, too_small)

    def test_negative_heterogeneity(self):
        with pytest.raises(ValueError):
            topogen.generate("chain", 4, heterogeneity=-0.1)

    def test_spec_roundtrip(self):
        gen = topogen.generate("mesh", 24, seed=11, heterogeneity=0.4)
        again = topogen.generate(**gen.spec())
        assert _snapshot(gen) == _snapshot(again)

    def test_custom_cost_model_scales_capacities(self):
        unit = topogen.generate("chain", 4, seed=3)
        halved = topogen.generate(
            "chain", 4, seed=3,
            cost_model=CostModel(t_sf=5180.0, t_sl=6150.0, scale=1.0),
        )
        for a, b in zip(unit.nodes.values(), halved.nodes.values()):
            assert b.t_sf == pytest.approx(a.t_sf / 2, rel=1e-9)
            assert b.t_sl == pytest.approx(a.t_sl / 2, rel=1e-9)

    def test_flagship_mesh_is_cluster_scale(self):
        gen = topogen.generate("mesh", 51, seed=1)
        assert gen.n_proxies >= 50
        assert len(gen.topology.flows) >= 4
