"""Property battery for the overload-control policies (repro.core.control).

Synthetic drives (no scenario, no event loop): the policies only see
``admit()`` calls and per-period ``observe()`` feedback, so a list of
(utilization, arrivals) periods exercises every controller invariant:

- conservation: admitted + rejected == seen, all non-negative, and
  admitted never exceeds seen (the controller cannot invent calls);
- the window policy never lets any upstream exceed the current window;
- determinism: the same drive replays to an identical decision log;
- convergence: every controller reopens fully after the overload ends.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.control import (
    CONTROL_POLICIES,
    ControlConfig,
    OccupancyControl,
    RateControl,
    SignalControl,
    WindowControl,
    format_retry_after,
    parse_retry_after,
)

#: One synthetic control period: measured utilization and the number of
#: new INVITEs arriving (evenly spaced) during the period.
PERIOD = st.tuples(
    st.floats(min_value=0.0, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    st.integers(min_value=0, max_value=40),
)
DRIVES = st.lists(PERIOD, min_size=1, max_size=30)
SOURCES = ("uac1", "uac2", "P0")


def build(policy: str, **overrides):
    """A policy wired as if attached to a ~200-cps proxy (no proxy
    object: ``_update_panic`` is inert, which these unit drives want)."""
    control = ControlConfig(policy, **overrides).build()
    control._capacity = 200.0
    control._period = 0.25
    control._slot_timeout = 16.0
    return control


def drive(control, periods, finals_after=None):
    """Replay a synthetic drive; returns the admitted call ids."""
    admitted = []
    now = 0.0
    for index, (utilization, arrivals) in enumerate(periods):
        for call in range(arrivals):
            at = now + control._period * (call + 1) / (arrivals + 1)
            src = SOURCES[(index + call) % len(SOURCES)]
            call_id = f"call-{index}-{call}"
            if control.admit(src, "P2", call_id, at):
                admitted.append(call_id)
        now += control._period
        control.observe(now, utilization, 0, arrivals / control._period)
        if finals_after is not None and index >= finals_after:
            for call_id in admitted[-arrivals:]:
                control.note_final(call_id, now)
    return admitted


@pytest.mark.parametrize("policy", CONTROL_POLICIES)
@settings(max_examples=40, deadline=None)
@given(periods=DRIVES)
def test_counters_conserved(policy, periods):
    control = build(policy)
    admitted = drive(control, periods)
    offered = sum(arrivals for _, arrivals in periods)
    assert control.calls_seen == offered
    assert control.calls_admitted == len(admitted)
    assert control.calls_admitted + control.calls_rejected == offered
    assert 0 <= control.calls_admitted <= offered
    assert control.calls_rejected >= 0
    assert len(control.decision_log) == len(periods)


@settings(max_examples=40, deadline=None)
@given(periods=DRIVES)
def test_window_never_exceeded(periods):
    control = build("window", window=4, window_cap=8)
    now = 0.0
    for index, (utilization, arrivals) in enumerate(periods):
        for call in range(arrivals):
            src = SOURCES[call % len(SOURCES)]
            before = control._outstanding.get(src, 0)
            ok = control.admit(src, None, f"c-{index}-{call}", now)
            held = control._outstanding.get(src, 0)
            if ok:
                # Admission never pushes an upstream past the window.
                assert before < control.window
                assert held == before + 1 <= control.window
            else:
                # Rejections only happen at (or, right after an AIMD
                # cut, above) the window -- stale slots drain, they are
                # never forcibly evicted mid-call.
                assert held == before >= control.window
        now += control._period
        control.observe(now, utilization, 0, 0.0)
        assert 1 <= control.window <= control.config.window_cap


@pytest.mark.parametrize("policy", CONTROL_POLICIES)
@settings(max_examples=25, deadline=None)
@given(periods=DRIVES)
def test_deterministic_replay(policy, periods):
    first = build(policy)
    second = build(policy)
    assert drive(first, periods) == drive(second, periods)
    assert first.decision_log == second.decision_log
    assert first.stats() == second.stats()


@pytest.mark.parametrize("policy", CONTROL_POLICIES)
def test_converges_after_overload(policy):
    """Overload for a while, then constant calm load: every controller
    must fully reopen (no latched shedding)."""
    control = build(policy)
    drive(control, [(1.0, 30)] * 12)
    assert control.calls_rejected > 0  # the overload actually bit
    drive(control, [(0.4, 5)] * 120, finals_after=0)
    calm = build(policy)
    before = calm.calls_rejected
    drive(calm, [(0.4, 5)] * 4)
    assert calm.calls_rejected == before  # calm baseline rejects nothing
    recovered = build(policy)
    drive(recovered, [(1.0, 30)] * 12)
    drive(recovered, [(0.4, 5)] * 120, finals_after=0)
    tail_log = recovered.decision_log[-1]
    if policy == "rate":
        assert tail_log["admitted_rate"] is None
    elif policy == "window":
        assert tail_log["window"] == recovered.config.window_cap
    else:
        assert tail_log["fraction"] == 1.0
    if policy == "signal":
        assert tail_log["remote_shed"] == {}
    # And it admits everything again.
    seen = recovered.calls_seen
    admitted = recovered.calls_admitted
    drive(recovered, [(0.4, 8)] * 3)
    assert recovered.calls_admitted - admitted == recovered.calls_seen - seen


@pytest.mark.parametrize("policy", CONTROL_POLICIES)
def test_no_sustained_oscillation(policy):
    """Constant offered load past capacity (with calls completing each
    period): after convergence the per-period admitted count must sit
    in a tight band, not limit-cycle between flood and starve."""
    control = build(policy)
    now = 0.0
    per_period = []
    for index in range(80):
        admitted_ids = []
        for call in range(30):
            at = now + control._period * (call + 1) / 31
            src = SOURCES[(index + call) % len(SOURCES)]
            call_id = f"c-{index}-{call}"
            if control.admit(src, "P2", call_id, at):
                admitted_ids.append(call_id)
        now += control._period
        control.observe(now, 0.97, 0, 30 / control._period)
        for call_id in admitted_ids:
            control.note_final(call_id, now)
        per_period.append(len(admitted_ids))
    tail = per_period[-20:]
    assert max(tail) - min(tail) <= 3, f"oscillating tail: {tail}"
    assert 0 < min(tail), "controller starved a sustained overload"
    assert max(tail) < 30, "controller stopped shedding under overload"


def test_signal_sheds_toward_rejecting_hop():
    control = build("signal")
    now = 0.0
    for _ in range(4):
        for call in range(10):
            control.admit("uac1", "P2", f"s-{call}", now)
        for _ in range(5):
            control.on_503("P2", "1", now)
        now += control._period
        control.observe(now, 0.3, 0, 40.0)
    shed = control.decision_log[-1]["remote_shed"]
    assert shed.get("P2", 0.0) > 0.2
    # Quiet hop: the shed decays geometrically and eventually drops out.
    for _ in range(20):
        now += control._period
        control.observe(now, 0.3, 0, 0.0)
    assert "P2" not in control.decision_log[-1]["remote_shed"]


def test_crash_resets_volatile_state():
    for policy in CONTROL_POLICIES:
        control = build(policy)
        drive(control, [(1.0, 30)] * 10)
        control.on_node_crash(123.0)
        assert control._panic is False
        if policy == "rate":
            assert control.rate is None
        elif policy == "window":
            assert control.window == control.config.window
            assert control._outstanding == {}
        else:
            assert control.fraction == 1.0
        if policy == "signal":
            assert control._remote == {}
        # Cumulative counters survive (they are lifetime accounting).
        assert control.calls_seen > 0


# ---------------------------------------------------------------------------
# ControlConfig coercion / validation / payload round-trip
# ---------------------------------------------------------------------------

def test_coerce_spellings():
    assert ControlConfig.coerce(None) is None
    assert ControlConfig.coerce("none") is None
    assert ControlConfig.coerce("off") is None
    assert ControlConfig.coerce("") is None
    for policy in CONTROL_POLICIES:
        config = ControlConfig.coerce(policy.upper())
        assert config.policy == policy
    existing = ControlConfig("rate")
    assert ControlConfig.coerce(existing) is existing
    assert ControlConfig.coerce({"policy": "window"}).policy == "window"
    with pytest.raises(ValueError):
        ControlConfig.coerce("tcp-vegas")
    with pytest.raises(TypeError):
        ControlConfig.coerce(3.5)


def test_payload_round_trip():
    config = ControlConfig("signal", target_utilization=0.8, window=16,
                           retry_after=2.0, signal_max_shed=0.7)
    payload = config.to_payload()
    clone = ControlConfig.from_payload(payload)
    assert clone.to_payload() == payload
    assert isinstance(clone.window, int)
    assert isinstance(clone.window_cap, int)


@pytest.mark.parametrize("kwargs", [
    {"policy": "rate", "target_utilization": 0.0},
    {"policy": "rate", "target_utilization": 1.5},
    {"policy": "rate", "beta": 1.0},
    {"policy": "window", "window": 0},
    {"policy": "window", "window": 8, "window_cap": 4},
    {"policy": "occupancy", "min_fraction": 0.0},
    {"policy": "occupancy", "growth_limit": 0.9},
    {"policy": "signal", "signal_max_shed": 1.0},
    {"policy": "signal", "signal_step": 0.0},
    {"policy": "signal", "signal_step": 1.5},
    {"policy": "rate", "retry_after": -1.0},
])
def test_validation_rejects(kwargs):
    with pytest.raises(ValueError):
        ControlConfig(**kwargs)


def test_build_returns_fresh_instances():
    config = ControlConfig("window")
    first, second = config.build(), config.build()
    assert first is not second
    assert isinstance(first, WindowControl)
    assert {
        "rate": RateControl, "occupancy": OccupancyControl,
        "signal": SignalControl,
    }["rate"] is RateControl  # sanity on the class map spellings
    for policy, cls in (("rate", RateControl), ("occupancy", OccupancyControl),
                        ("signal", SignalControl)):
        assert isinstance(ControlConfig(policy).build(), cls)


@settings(max_examples=50, deadline=None)
@given(value=st.integers(min_value=0, max_value=86_400))
def test_retry_after_integral_round_trip(value):
    text = format_retry_after(float(value))
    if value >= 1:
        assert text == str(value)  # the wire-idiomatic integral form
    assert parse_retry_after(text) == float(value)


@pytest.mark.parametrize("value", [0.5, 0.25, 1.5, 2.75])
def test_retry_after_fractional_round_trip(value):
    assert parse_retry_after(format_retry_after(value)) == value


def test_parse_retry_after_tolerates_noise():
    assert parse_retry_after("5 (overloaded)") == 5.0
    assert parse_retry_after("120;duration=60") == 120.0
    assert parse_retry_after("0.5") == 0.5
    assert parse_retry_after("soon") is None
    assert parse_retry_after("-3") is None
    assert parse_retry_after(None) is None
    assert parse_retry_after("") is None
