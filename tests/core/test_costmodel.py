"""Tests for the Figure-3-calibrated cost model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costmodel import (
    CALL_MESSAGE_KINDS,
    COMPONENTS,
    CostModel,
    FIG3_FEATURE_EVENTS,
    FIG3_TOTALS,
    Feature,
    MessageKind,
    PAPER_T_SF,
    PAPER_T_SL,
    component_events,
    scenario_features,
    total_events,
)


class TestFig3Profile:
    """The feature table must reproduce Figure 3's bar totals exactly."""

    @pytest.mark.parametrize("mode,total", sorted(FIG3_TOTALS.items()))
    def test_scenario_totals_match_paper(self, mode, total):
        assert total_events(scenario_features(mode)) == total

    def test_components_are_known(self):
        for feature, table in FIG3_FEATURE_EVENTS.items():
            for component in table:
                assert component in COMPONENTS, (feature, component)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            scenario_features("turbo")

    def test_lookup_band_is_thin(self):
        """Paper: lookup shows as a 'thin band' (~36 events)."""
        delta = component_events(scenario_features("stateless"))
        base = component_events(scenario_features("no_lookup"))
        lookup_events = delta.get("lookup", 0) - base.get("lookup", 0)
        assert 20 <= lookup_events <= 60

    def test_state_costs_appear_with_state(self):
        assert "state" not in component_events(scenario_features("stateless"))
        assert component_events(scenario_features("transaction_stateful"))["state"] > 0

    def test_component_monotonicity(self):
        """Paper: granular costs increase monotonically with service."""
        order = ["no_lookup", "stateless", "transaction_stateful",
                 "dialog_stateful", "authentication"]
        previous = {}
        for mode in order:
            current = component_events(scenario_features(mode))
            for component, events in previous.items():
                assert current.get(component, 0) >= events, (mode, component)
            previous = current


class TestCalibration:
    def test_anchors_exact(self, cost_model):
        assert cost_model.capacity_cps(scenario_features("stateless")) == pytest.approx(
            PAPER_T_SL, rel=1e-9
        )
        assert cost_model.capacity_cps(
            scenario_features("transaction_stateful")
        ) == pytest.approx(PAPER_T_SF, rel=1e-9)

    def test_positive_costs(self, cost_model):
        assert cost_model.k_seconds_per_event > 0
        assert cost_model.base_seconds_per_call > 0

    def test_stateful_gap_smaller_than_profile_ratio(self, cost_model):
        """The kernel baseline compresses the 1.72x profile gap to 1.19x."""
        sl = cost_model.per_call_cost(scenario_features("stateless"))
        sf = cost_model.per_call_cost(scenario_features("transaction_stateful"))
        assert 1.15 < sf / sl < 1.25

    def test_capacity_ordering_matches_modes(self, cost_model):
        caps = [
            cost_model.capacity_cps(scenario_features(mode))
            for mode in ("no_lookup", "stateless", "transaction_stateful",
                         "dialog_stateful", "authentication")
        ]
        assert caps == sorted(caps, reverse=True)

    def test_invalid_anchor_order_rejected(self):
        with pytest.raises(ValueError):
            CostModel(t_sf=13000, t_sl=12300)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            CostModel(scale=0)

    def test_custom_anchors(self):
        model = CostModel(t_sf=5000, t_sl=6000)
        assert model.capacity_cps(
            scenario_features("transaction_stateful")
        ) == pytest.approx(5000, rel=1e-9)


class TestScale:
    @pytest.mark.parametrize("scale", [2.0, 10.0, 50.0])
    def test_scale_divides_capacity(self, scale):
        base = CostModel()
        scaled = CostModel(scale=scale)
        features = scenario_features("transaction_stateful")
        assert scaled.capacity_cps(features) == pytest.approx(
            base.capacity_cps(features) / scale, rel=1e-9
        )

    def test_scale_multiplies_message_cost(self):
        base, _ = CostModel().message_cost(MessageKind.INVITE,
                                           scenario_features("stateless"))
        scaled, _ = CostModel(scale=10).message_cost(
            MessageKind.INVITE, scenario_features("stateless")
        )
        assert scaled == pytest.approx(10 * base, rel=1e-9)


class TestViaOverhead:
    def test_depth_reduces_capacity(self, cost_model):
        features = scenario_features("transaction_stateful")
        caps = [cost_model.capacity_cps(features, depth=d) for d in (0, 1, 2)]
        assert caps[0] > caps[1] > caps[2]

    def test_zero_overhead_removes_depth_effect(self):
        model = CostModel(via_overhead=0.0)
        features = scenario_features("stateless")
        assert model.capacity_cps(features, 0) == pytest.approx(
            model.capacity_cps(features, 3), rel=1e-9
        )

    def test_negative_extra_vias_rejected(self, cost_model):
        with pytest.raises(ValueError):
            cost_model.message_cost(MessageKind.INVITE, frozenset(), extra_vias=-1)

    def test_fractional_depth_interpolates(self, cost_model):
        features = scenario_features("stateless")
        mid = cost_model.per_call_cost(features, depth=0.5)
        assert cost_model.per_call_cost(features, 0) < mid
        assert mid < cost_model.per_call_cost(features, 1)


class TestMessageCosts:
    def test_per_call_is_sum_of_messages(self, cost_model):
        features = scenario_features("transaction_stateful")
        total = 0.0
        for kind in CALL_MESSAGE_KINDS:
            extra = cost_model._message_extra_vias(kind, 0.0)
            cost, _ = cost_model.message_cost(kind, features, extra)
            total += cost
        assert total == pytest.approx(cost_model.per_call_cost(features), rel=1e-12)

    def test_components_sum_to_total(self, cost_model):
        cost, components = cost_model.message_cost(
            MessageKind.INVITE, scenario_features("authentication")
        )
        assert sum(components.values()) == pytest.approx(cost, rel=1e-12)

    def test_invite_is_most_expensive_call_message(self, cost_model):
        features = scenario_features("transaction_stateful")
        costs = {
            kind: cost_model.message_cost(kind, features)[0]
            for kind in CALL_MESSAGE_KINDS
        }
        assert max(costs, key=costs.get) == MessageKind.INVITE

    def test_absorb_cheaper_than_full_invite(self, cost_model):
        features = scenario_features("transaction_stateful")
        invite, _ = cost_model.message_cost(MessageKind.INVITE, features)
        absorb, _ = cost_model.message_cost(MessageKind.ABSORB_RETRANSMIT, features)
        assert absorb < invite / 2

    def test_control_is_cheap(self, cost_model):
        control, _ = cost_model.message_cost(MessageKind.CONTROL)
        invite, _ = cost_model.message_cost(
            MessageKind.INVITE, scenario_features("stateless")
        )
        assert control < invite / 5

    def test_auth_only_charged_with_auth_feature(self, cost_model):
        without, _ = cost_model.message_cost(
            MessageKind.INVITE, scenario_features("dialog_stateful")
        )
        with_auth, comps = cost_model.message_cost(
            MessageKind.INVITE, scenario_features("authentication")
        )
        assert with_auth > without
        assert comps.get("authentication", 0) > 0


class TestThresholds:
    def test_thresholds_strip_and_add_state(self, cost_model):
        t_sf, t_sl = cost_model.node_thresholds({Feature.BASE, Feature.LOOKUP})
        assert t_sf == pytest.approx(PAPER_T_SF, rel=1e-9)
        assert t_sl == pytest.approx(PAPER_T_SL, rel=1e-9)

    def test_thresholds_idempotent_wrt_state_features(self, cost_model):
        plain = cost_model.node_thresholds({Feature.BASE, Feature.LOOKUP})
        with_state = cost_model.node_thresholds(
            {Feature.BASE, Feature.LOOKUP, Feature.TXN_STATE}
        )
        assert plain == with_state

    def test_utilization_linear(self, cost_model):
        half = cost_model.utilization(PAPER_T_SF / 2, 0)
        assert half == pytest.approx(0.5, rel=1e-9)
        mixed = cost_model.utilization(PAPER_T_SF / 2, PAPER_T_SL / 2)
        assert mixed == pytest.approx(1.0, rel=1e-9)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        depth=st.floats(min_value=0.0, max_value=4.0),
        mode=st.sampled_from(sorted(FIG3_TOTALS)),
    )
    def test_capacity_positive_and_decreasing_in_depth(self, depth, mode):
        model = CostModel()
        features = scenario_features(mode)
        cap = model.capacity_cps(features, depth)
        assert cap > 0
        assert cap <= model.capacity_cps(features, 0.0) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        t_sf=st.floats(min_value=1000, max_value=20000),
        gap=st.floats(min_value=1.05, max_value=1.6),
    )
    def test_calibration_reproduces_arbitrary_anchors(self, t_sf, gap):
        t_sl = t_sf * gap
        model = CostModel(t_sf=t_sf, t_sl=t_sl)
        assert model.capacity_cps(
            scenario_features("transaction_stateful")
        ) == pytest.approx(t_sf, rel=1e-6)
        assert model.capacity_cps(scenario_features("stateless")) == pytest.approx(
            t_sl, rel=1e-6
        )

    def test_gap_beyond_profile_ratio_rejected(self):
        """A saturation gap above the 707/412 profile ratio would need a
        negative kernel baseline; the model must refuse to calibrate."""
        with pytest.raises(ValueError):
            CostModel(t_sf=5000, t_sl=10000)
