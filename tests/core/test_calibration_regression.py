"""Regression pins for the calibrated cost model.

Every figure reproduction flows from these constants; if a change to
the component tables, message weights or calibration solver moves them,
this test makes the move explicit (update the pins *and* re-run the
benchmark suite, since all EXPERIMENTS.md numbers shift with them).
"""

import pytest

from repro.core.costmodel import CostModel, Feature, scenario_features


@pytest.fixture(scope="module")
def model():
    return CostModel()


class TestCalibrationConstants:
    def test_k_nanoseconds_per_event(self, model):
        assert model.k_seconds_per_event * 1e9 == pytest.approx(50.52, abs=0.2)

    def test_base_microseconds_per_call(self, model):
        assert model.base_seconds_per_call * 1e6 == pytest.approx(54.06, abs=0.3)


class TestCapacityPins:
    """Analytic capacities (cps) by mode and chain depth."""

    @pytest.mark.parametrize(
        "mode,depth,expected",
        [
            ("no_lookup", 0, 12694),
            ("stateless", 0, 12300),
            ("transaction_stateful", 0, 10360),
            ("dialog_stateful", 0, 9850),
            ("authentication", 0, 9040),
            ("no_lookup", 1, 10837),
            ("stateless", 1, 10537),
            ("transaction_stateful", 1, 8976),
            ("transaction_stateful", 2, 7919),
        ],
    )
    def test_capacity(self, model, mode, depth, expected):
        measured = model.capacity_cps(scenario_features(mode), depth)
        assert measured == pytest.approx(expected, rel=0.002)


class TestThresholdPins:
    def test_entry_node_no_lookup(self, model):
        t_sf, t_sl = model.node_thresholds({Feature.BASE}, depth=0.0)
        assert t_sf == pytest.approx(10638, rel=0.002)
        assert t_sl == pytest.approx(12694, rel=0.002)

    def test_exit_node_with_lookup_depth1(self, model):
        t_sf, t_sl = model.node_thresholds(
            {Feature.BASE, Feature.LOOKUP}, depth=1.0
        )
        assert t_sf == pytest.approx(8976, rel=0.002)
        assert t_sl == pytest.approx(10537, rel=0.002)


class TestLPOraclePins:
    """Figure 7's LP prediction, pinned against the simplex backend.

    The pure-python backend is the oracle the optgap experiments (and
    cacheable run keys) depend on, so its value at the paper's 80/20
    peak is pinned both against the paper number and exactly.
    """

    def test_fig7_peak_near_paper(self):
        from repro.core.lp import solve_fixed_routing
        from repro.core.topology import internal_external_topology

        topo = internal_external_topology(10360.0, 12300.0, 0.8)
        solution = solve_fixed_routing(topo, backend="simplex")
        # Paper: "the LP predicts a value of 11,960 cps" at the peak.
        assert solution.throughput == pytest.approx(11960, rel=0.02)

    def test_fig7_peak_exact(self):
        from repro.core.lp import solve_fixed_routing
        from repro.core.topology import internal_external_topology

        topo = internal_external_topology(10360.0, 12300.0, 0.8)
        solution = solve_fixed_routing(topo, backend="simplex")
        assert solution.throughput == pytest.approx(11855.97, abs=0.01)


class TestDerivedBoundPins:
    def test_two_series_lp_bound_with_depth(self, model):
        """The analytic bound SERvartuka chases in Figure 5."""
        from repro.harness.figures import _series_hints

        static, optimal = _series_hints(model, 2)
        assert static == pytest.approx(8976, rel=0.002)
        assert optimal == pytest.approx(10537, rel=0.005)

    def test_three_series_bounds(self, model):
        from repro.harness.figures import _series_hints

        static, optimal = _series_hints(model, 3)
        assert static == pytest.approx(7919, rel=0.005)
        assert optimal > static * 1.15
