"""Unit tests for Algorithms 1 and 2 against a fake proxy.

These drive :class:`ServartukaPolicy` directly with synthetic traffic
counts and check the ``myshare`` arithmetic against equation (8) by
hand, without any simulation.
"""

import math

import pytest

from repro.core.overload import OverloadReport
from repro.core.servartuka import DELIVER, ServartukaConfig, ServartukaPolicy

T_SF = 1000.0
T_SL = 1200.0
ALPHA = 1.0 / T_SF
BETA = 1.0 / T_SL


class FakeProxy:
    """Just enough proxy surface for the policy."""

    def __init__(self, t_sf=T_SF, t_sl=T_SL):
        self.thresholds = (t_sf, t_sl)
        self.broadcasts = []

    def resource_thresholds(self, resource):
        return self.thresholds

    def broadcast_overload(self, overloaded, c_asf_rate, sequence,
                           resource="state"):
        self.broadcasts.append((overloaded, c_asf_rate, sequence))


def make_policy(**config):
    policy = ServartukaPolicy(ServartukaConfig(**config))
    proxy = FakeProxy()
    policy.attach(proxy)
    policy.on_period(0.0)  # opens the first measurement period
    return policy, proxy


def drive(policy, ds_path, count, already_stateful=False, is_exit=False):
    """Feed `count` new calls through Algorithm 1; returns #stateful."""
    stateful = 0
    for _ in range(count):
        decision = policy.decide(
            ds_path=ds_path,
            already_stateful=already_stateful,
            in_transaction=False,
            is_exit=is_exit,
        )
        stateful += 1 if decision.stateful else 0
    return stateful


class TestAlgorithm1:
    def test_initially_takes_all_state(self):
        policy, _ = make_policy()
        assert drive(policy, "next", 50) == 50

    def test_already_stateful_forwarded_stateless(self):
        policy, _ = make_policy()
        assert drive(policy, "next", 20, already_stateful=True) == 0
        assert policy.path("next").fasf_count == 20

    def test_exit_calls_always_stateful(self):
        policy, _ = make_policy()
        policy.path(DELIVER).myshare = 0.0  # even with a zero share
        assert drive(policy, "ignored", 10, is_exit=True) == 10

    def test_in_transaction_bypasses_share(self):
        policy, _ = make_policy()
        policy.path("next").myshare = 0.0
        decision = policy.decide("next", False, in_transaction=True, is_exit=False)
        assert decision.stateful

    def test_respects_finite_myshare(self):
        policy, _ = make_policy()
        policy.path("next").myshare = 5.0
        assert drive(policy, "next", 20) == 5
        assert policy.path("next").nasf_forwarded == 15

    def test_counters_track_totals(self):
        policy, _ = make_policy()
        drive(policy, "a", 7)
        drive(policy, "b", 3, already_stateful=True)
        assert policy.tot_rcv == 10
        assert policy.tot_sf == 7

    def test_dialog_state_flag_propagates(self):
        policy = ServartukaPolicy(ServartukaConfig(dialog_state=True))
        policy.attach(FakeProxy())
        decision = policy.decide("n", False, False, False)
        assert decision.dialog_stateful


class TestAlgorithm2BelowThreshold:
    def test_myshare_infinite_below_t_sf(self):
        policy, _ = make_policy(period=1.0)
        drive(policy, "next", 500)  # 500 cps < T_SF
        policy.on_period(1.0)
        assert policy.paths["next"].myshare == math.inf

    def test_counters_reset_each_period(self):
        policy, _ = make_policy()
        drive(policy, "next", 100)
        policy.on_period(1.0)
        assert policy.tot_rcv == 0
        assert policy.paths["next"].rcv_count == 0
        assert policy.paths["next"].last_rate == pytest.approx(100.0)


class TestAlgorithm2Shedding:
    def test_single_path_matches_equation_8(self):
        """One downstream proxy path, load above T_SF: the share must be
        (1 - beta t) / (alpha - beta) converted to a per-period count."""
        policy, _ = make_policy(period=1.0)
        load = 1100
        drive(policy, "next", load)
        policy.on_period(1.0)
        expected_rate = (1.0 - BETA * load) / (ALPHA - BETA)
        assert policy.paths["next"].myshare == pytest.approx(expected_rate, rel=1e-6)

    def test_share_scales_with_period_length(self):
        policy, _ = make_policy(period=2.0)
        drive(policy, "next", 2200)  # 1100 cps over 2 seconds
        policy.on_period(2.0)
        expected_rate = (1.0 - BETA * 1100) / (ALPHA - BETA)
        assert policy.paths["next"].myshare == pytest.approx(
            expected_rate * 2.0, rel=1e-6
        )

    def test_two_paths_split_the_feasible_state(self):
        policy, _ = make_policy(period=1.0)
        drive(policy, "a", 600)
        drive(policy, "b", 600)
        policy.on_period(1.0)
        total_planned = (
            policy.paths["a"].myshare + policy.paths["b"].myshare
        )
        feasible = (1.0 - BETA * 1200) / (ALPHA - BETA)
        assert total_planned == pytest.approx(feasible, rel=1e-6)

    def test_fasf_traffic_reduces_required_state(self):
        """Traffic already stateful upstream only costs beta here, and
        needs no local share."""
        policy, _ = make_policy(period=1.0)
        drive(policy, "next", 550)
        drive(policy, "next", 550, already_stateful=True)
        policy.on_period(1.0)
        # Load is 1100 > T_SF but 550 are FASF: required local state is
        # only 550, which must be within the feasible level.
        share = policy.paths["next"].myshare
        feasible = (1.0 - BETA * 1100) / (ALPHA - BETA)
        assert share == pytest.approx(feasible, rel=1e-6)

    def test_deliver_path_forces_state(self):
        policy, proxy = make_policy(period=1.0)
        drive(policy, "ignored", 400, is_exit=True)
        drive(policy, "next", 700)
        policy.on_period(1.0)
        # Deliver flow (400 cps) must be stateful here; the remaining
        # feasible state budget goes to the proxy path.
        share = policy.paths["next"].myshare
        feasible = (1.0 - BETA * 1100) / (ALPHA - BETA)
        assert share == pytest.approx(feasible - 400, rel=1e-4)
        assert policy.paths[DELIVER].myshare == math.inf


class TestOverloadHandling:
    def test_exit_only_node_overloads_when_infeasible(self):
        policy, proxy = make_policy(period=1.0)
        drive(policy, "x", 1150, is_exit=True)  # all forced stateful
        policy.on_period(1.0)
        assert proxy.broadcasts, "expected an overload report"
        overloaded, c_asf, seq = proxy.broadcasts[-1]
        assert overloaded
        feasible = (1.0 - BETA * 1150) / (ALPHA - BETA)
        assert c_asf == pytest.approx(feasible, rel=1e-6)

    def test_no_overload_when_feasible(self):
        policy, proxy = make_policy(period=1.0)
        drive(policy, "x", 900, is_exit=True)
        policy.on_period(1.0)
        assert not proxy.broadcasts

    def test_overloaded_downstream_forces_absorption(self):
        policy, proxy = make_policy(period=1.0)
        policy.on_overload_report(OverloadReport("next", True, 300.0, 1), 0.0)
        drive(policy, "next", 1100)
        policy.on_period(1.0)
        # Downstream can hold 300 cps; we must absorb the rest.
        assert policy.paths["next"].myshare == pytest.approx(800.0, rel=1e-6)

    def test_all_paths_overloaded_propagates_upstream(self):
        policy, proxy = make_policy(period=1.0)
        policy.on_overload_report(OverloadReport("next", True, 100.0, 1), 0.0)
        drive(policy, "next", 1150)
        policy.on_period(1.0)
        assert proxy.broadcasts and proxy.broadcasts[-1][0] is True

    def test_clear_after_calm_periods(self):
        policy, proxy = make_policy(period=1.0, clear_periods=2)
        drive(policy, "x", 1150, is_exit=True)
        policy.on_period(1.0)
        assert policy.is_overloaded
        drive(policy, "x", 400, is_exit=True)
        policy.on_period(2.0)
        drive(policy, "x", 400, is_exit=True)
        policy.on_period(3.0)
        assert not policy.is_overloaded
        assert proxy.broadcasts[-1][0] is False  # clear message

    def test_stale_overload_reports_ignored(self):
        policy, _ = make_policy()
        policy.on_overload_report(OverloadReport("next", True, 100.0, 5), 0.0)
        policy.on_overload_report(OverloadReport("next", False, 0.0, 3), 0.1)
        assert policy.path("next").overload.overloaded  # seq 3 < 5: stale


class TestMixedPathAccounting:
    """The expanded section-5 equation with every path kind present."""

    def test_overloaded_plus_deliver_plus_unsat(self):
        """One overloaded proxy path, one deliver flow, one unsaturated
        proxy path; the constant c must fold the fixed terms so total
        planned state hits the feasibility level exactly."""
        policy, _ = make_policy(period=1.0)
        policy.on_overload_report(OverloadReport("sat", True, 150.0, 1), 0.0)
        drive(policy, "sat", 300)
        drive(policy, "ignored", 150, is_exit=True)
        drive(policy, "free", 600)
        policy.on_period(1.0)

        forced_sat = max(0.0, 300 - 150)      # rate minus c_asf
        forced_deliver = 150
        feasible = (1.0 - BETA * 1050) / (ALPHA - BETA)
        expected_free = feasible - forced_sat - forced_deliver
        assert expected_free > 0  # regime chosen to stay feasible
        assert policy.paths["sat"].myshare == pytest.approx(forced_sat, rel=1e-6)
        assert policy.paths["free"].myshare == pytest.approx(
            expected_free, rel=1e-4
        )

    def test_two_unsat_paths_split_equally_plus_beta_terms(self):
        """lt_q = c/k - beta*t_q/(alpha-beta): asymmetric loads produce
        asymmetric shares whose difference is exactly the beta term
        (loads chosen so neither share clamps at zero)."""
        policy, _ = make_policy(period=1.0)
        drive(policy, "a", 560)
        drive(policy, "b", 540)
        policy.on_period(1.0)
        share_a = policy.paths["a"].myshare
        share_b = policy.paths["b"].myshare
        inv_ab = 1.0 / (ALPHA - BETA)
        assert share_a > 0 and share_b > 0
        assert share_b - share_a == pytest.approx(
            BETA * (560 - 540) * inv_ab, rel=1e-6
        )
        # And together they plan exactly the feasible level.
        feasible = (1.0 - BETA * 1100) / (ALPHA - BETA)
        assert share_a + share_b == pytest.approx(feasible, rel=1e-6)

    def test_overload_report_with_generous_c_asf_means_no_forcing(self):
        """A 'saturated' path that can still absorb more than we send it
        forces nothing locally."""
        policy, _ = make_policy(period=1.0)
        policy.on_overload_report(OverloadReport("sat", True, 900.0, 1), 0.0)
        drive(policy, "sat", 500)
        drive(policy, "free", 700)
        policy.on_period(1.0)
        assert policy.paths["sat"].myshare == 0.0  # nothing forced

    def test_fasf_on_overloaded_path_reduces_forcing(self):
        policy, _ = make_policy(period=1.0)
        policy.on_overload_report(OverloadReport("sat", True, 100.0, 1), 0.0)
        drive(policy, "sat", 400)
        drive(policy, "sat", 300, already_stateful=True)
        drive(policy, "free", 500)
        policy.on_period(1.0)
        # Of the 700 on the sat path, 300 are already stateful upstream
        # and 100 can still be absorbed downstream: force only 300.
        assert policy.paths["sat"].myshare == pytest.approx(300.0, rel=1e-6)


class TestRejectionAccounting:
    def test_note_rejected_counts_toward_load(self):
        policy, _ = make_policy(period=1.0)
        drive(policy, "next", 900)
        for _ in range(300):
            policy.note_rejected("next", is_exit=False)
        policy.on_period(1.0)
        assert policy.last_msg_rate == pytest.approx(1200.0)
        # 1200 > T_SF: shedding engaged despite only 900 decided calls.
        assert policy.paths["next"].myshare != math.inf

    def test_note_rejected_exit_maps_to_deliver(self):
        policy, _ = make_policy()
        policy.note_rejected("whatever", is_exit=True)
        assert policy.path(DELIVER).rcv_count == 1


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period": 0},
            {"headroom": 0},
            {"headroom": 1.5},
            {"clear_utilization": 1.0},
            {"clear_periods": 0},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServartukaConfig(**kwargs)

    def test_headroom_scales_thresholds(self):
        policy = ServartukaPolicy(ServartukaConfig(headroom=0.9))
        policy.attach(FakeProxy())
        t_sf, t_sl = policy._thresholds()
        assert t_sf == pytest.approx(T_SF * 0.9)
        assert t_sl == pytest.approx(T_SL * 0.9)
