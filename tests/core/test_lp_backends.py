"""Cross-solver battery: pure-python simplex vs scipy ``linprog``.

The simplex backend exists so the LP oracle works without scipy (and
so run-cache keys seeded by oracle rates are identical on every host).
These tests assert the two backends are interchangeable: on every
fixture topology from ``tests/core/test_lp.py`` and on a grid of
generated cluster topologies, objectives agree within ``1e-6``
relative and both solutions pass :meth:`LPSolution.verify`.

When scipy is absent the cross-checks skip and the simplex-only
assertions (feasibility, backend selection) still run -- that is the
configuration the no-scipy CI job exercises.
"""

import pytest

from repro.core import lp as lp_mod
from repro.core import topogen
from repro.core.lp import (
    FlowPathLP,
    LPError,
    StateDistributionLP,
    available_backends,
    default_backend,
    set_default_backend,
    solve_fixed_routing,
    solve_free_routing,
)
from repro.core.simplex import SimplexError, solve_linear_program
from repro.core.topology import (
    internal_external_topology,
    parallel_fork_topology,
    series_topology,
    two_series_topology,
)

T_SF = 10360.0
T_SL = 12300.0

HAVE_SCIPY = "scipy" in available_backends()

needs_scipy = pytest.mark.skipif(
    not HAVE_SCIPY, reason="scipy not installed (simplex-only host)"
)

#: Every topology shape the existing LP test-suite exercises.
FIXTURES = {
    "two_series": lambda: two_series_topology(T_SF, T_SL),
    "three_series": lambda: series_topology([(T_SF, T_SL)] * 3),
    "single_node": lambda: series_topology([(T_SF, T_SL)]),
    "hetero_series": lambda: series_topology([(11000, 12300), (9000, 12300)]),
    "degenerate_series": lambda: series_topology(
        [(12000, 12300), (6200, 12300)]
    ),
    "int_ext_0": lambda: internal_external_topology(T_SF, T_SL, 0.0),
    "int_ext_50": lambda: internal_external_topology(T_SF, T_SL, 0.5),
    "int_ext_80": lambda: internal_external_topology(T_SF, T_SL, 0.8),
    "int_ext_100": lambda: internal_external_topology(T_SF, T_SL, 1.0),
    "fork": lambda: parallel_fork_topology(
        (T_SF, T_SL), (T_SF, T_SL), (T_SF, T_SL)
    ),
    "fork_weak": lambda: parallel_fork_topology(
        (T_SF, T_SL), (3000, 3600), (3000, 3600)
    ),
    "fork_uneven": lambda: parallel_fork_topology(
        (T_SF, T_SL), (T_SF, T_SL), (T_SF, T_SL), upper_share=0.9
    ),
}

#: Generated-instance grid for the cross-check (small but covers every
#: family and a heterogeneous draw of each).
GENERATED = [
    ("chain", 4, 0.0),
    ("chain", 8, 0.5),
    ("tree", 7, 0.0),
    ("tree", 15, 0.4),
    ("mesh", 12, 0.0),
    ("mesh", 24, 0.6),
]


def _assert_close(a, b, rel=1e-6):
    assert a == pytest.approx(b, rel=rel, abs=1e-6)


@needs_scipy
class TestFixtureAgreement:
    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_free_routing(self, name):
        topo = FIXTURES[name]()
        simplex = solve_free_routing(topo, backend="simplex")
        scipy_ = solve_free_routing(topo, backend="scipy")
        simplex.verify()
        scipy_.verify()
        _assert_close(simplex.throughput, scipy_.throughput)

    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_fixed_routing(self, name):
        topo = FIXTURES[name]()
        simplex = solve_fixed_routing(topo, backend="simplex")
        scipy_ = solve_fixed_routing(topo, backend="scipy")
        simplex.verify()
        scipy_.verify()
        _assert_close(simplex.throughput, scipy_.throughput)

    def test_hop_penalties(self):
        topo = two_series_topology(T_SF, T_SL)
        penalties = {("main", "S2"): 1.2}
        simplex = FlowPathLP(topo, penalties, backend="simplex").solve()
        scipy_ = FlowPathLP(topo, penalties, backend="scipy").solve()
        _assert_close(simplex.throughput, scipy_.throughput)


@needs_scipy
class TestGeneratedAgreement:
    @pytest.mark.parametrize("family,size,het", GENERATED)
    def test_oracle_objective(self, family, size, het):
        gen = topogen.generate(family, size, seed=7, heterogeneity=het)
        simplex = gen.oracle(backend="simplex")
        scipy_ = gen.oracle(backend="scipy")
        simplex.verify()
        scipy_.verify()
        _assert_close(simplex.throughput, scipy_.throughput)

    @pytest.mark.parametrize("family,size,het", GENERATED[:3])
    def test_free_routing_objective(self, family, size, het):
        gen = topogen.generate(family, size, seed=7, heterogeneity=het)
        simplex = solve_free_routing(gen.topology, backend="simplex")
        scipy_ = solve_free_routing(gen.topology, backend="scipy")
        _assert_close(simplex.throughput, scipy_.throughput)


class TestSimplexAlone:
    """Assertions that must hold with no scipy on the host."""

    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_fixture_feasibility(self, name):
        topo = FIXTURES[name]()
        solve_free_routing(topo, backend="simplex").verify()
        solve_fixed_routing(topo, backend="simplex").verify()

    def test_paper_two_series_value(self):
        solution = solve_free_routing(
            two_series_topology(T_SF, T_SL), backend="simplex"
        )
        assert solution.throughput == pytest.approx(11247, abs=5)

    def test_raw_solver_small_program(self):
        # min -x - y  s.t.  x + y <= 4, x <= 3, 0 <= y <= 2
        x = solve_linear_program(
            [-1.0, -1.0],
            a_ub=[[1.0, 1.0]],
            b_ub=[4.0],
            bounds=[(0.0, 3.0), (0.0, 2.0)],
        )
        assert x[0] + x[1] == pytest.approx(4.0, abs=1e-9)

    def test_raw_solver_equality_and_fixed_vars(self):
        # min x + 2y  s.t.  x + y = 3, y fixed at 1.
        x = solve_linear_program(
            [1.0, 2.0],
            a_eq=[[1.0, 1.0]],
            b_eq=[3.0],
            bounds=[(0.0, None), (1.0, 1.0)],
        )
        assert x == pytest.approx([2.0, 1.0], abs=1e-9)

    def test_raw_solver_infeasible(self):
        with pytest.raises(SimplexError):
            solve_linear_program(
                [1.0],
                a_eq=[[1.0]],
                b_eq=[5.0],
                bounds=[(0.0, 1.0)],
            )


class TestBackendSelection:
    @pytest.fixture(autouse=True)
    def _clean(self, monkeypatch):
        monkeypatch.delenv(lp_mod.DEFAULT_BACKEND_ENV, raising=False)
        set_default_backend(None)
        yield
        set_default_backend(None)

    def test_simplex_always_available(self):
        assert "simplex" in available_backends()

    def test_auto_prefers_scipy_when_present(self):
        assert default_backend() == available_backends()[0]

    def test_set_default_backend(self):
        set_default_backend("simplex")
        assert default_backend() == "simplex"

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv(lp_mod.DEFAULT_BACKEND_ENV, "simplex")
        assert default_backend() == "simplex"

    def test_explicit_set_beats_env(self, monkeypatch):
        monkeypatch.setenv(lp_mod.DEFAULT_BACKEND_ENV, "simplex")
        set_default_backend("simplex")
        assert default_backend() == "simplex"

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(lp_mod.DEFAULT_BACKEND_ENV, "glpk")
        with pytest.raises(LPError):
            default_backend()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_default_backend("glpk")
        with pytest.raises(ValueError):
            solve_free_routing(
                two_series_topology(T_SF, T_SL), backend="glpk"
            )

    def test_scipy_requested_but_missing(self, monkeypatch):
        monkeypatch.setattr(lp_mod, "_scipy_linprog", lambda: None)
        with pytest.raises(LPError):
            solve_free_routing(
                two_series_topology(T_SF, T_SL), backend="scipy"
            )

    def test_instance_backend_pins_solver(self):
        lp = StateDistributionLP(
            two_series_topology(T_SF, T_SL), backend="simplex"
        )
        assert lp.solve().throughput == pytest.approx(11247, abs=5)
