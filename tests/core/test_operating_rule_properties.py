"""Property tests for the equation-(8) operating rule and Algorithms 1/2.

``tests/core/test_analysis.py`` pins equation (8) at the paper's
measured capacities; this file asserts the *structural* properties over
randomized capacity pairs and loads:

- the operating rule is continuous at the knee ``t = T_SF``,
- its output is always feasible (``0 <= t_SF(t) <= t``),
- above the knee the stateful share is monotone non-increasing in the
  offered load (state is only ever shed, never re-acquired, as load
  grows),
- in the shedding regime the node runs at exactly full utilization,
- the series LP optimum is pointwise consistent with equation (8).

Plus the invariants of the distributed realization:

- **Algorithm 1** (per-message decision): counter conservation, the
  myshare admission rule, and the statefulness guarantee for exit /
  in-transaction traffic,
- **Algorithm 2** (periodic planning): nonnegative shares, unlimited
  shares below the knee, a feasible plan (or an overload report
  upstream when no plan fits), and a clean slate after a crash.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.analysis import (
    optimal_stateful_rate,
    series_optimal_throughput,
    utilization_at,
)
from repro.core.servartuka import DELIVER, ServartukaConfig, ServartukaPolicy

# Strictly t_sf < t_sl: state must cost something for the rule to bite.
capacity_pairs = st.tuples(
    st.floats(min_value=200.0, max_value=20_000.0),
    st.floats(min_value=0.30, max_value=0.95),
).map(lambda pair: (pair[0] * pair[1], pair[0]))


# ---------------------------------------------------------------------------
# Equation (8): the operating rule itself
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(pair=capacity_pairs, frac=st.floats(min_value=0.0, max_value=3.0))
def test_output_is_always_feasible(pair, frac):
    """0 <= t_SF(t) <= t for every capacity pair and load."""
    t_sf, t_sl = pair
    load = frac * t_sl
    stateful = optimal_stateful_rate(load, t_sf, t_sl)
    assert 0.0 <= stateful <= load + 1e-9


@settings(max_examples=200, deadline=None)
@given(pair=capacity_pairs)
def test_continuity_at_the_knee(pair):
    """Both branches of equation (8) meet at t = T_SF with value T_SF:
    algebraically (1 - T_SF/t_sl) / (alpha - beta) == T_SF."""
    t_sf, t_sl = pair
    at_knee = optimal_stateful_rate(t_sf, t_sf, t_sl)
    assert at_knee == t_sf  # first branch, exactly
    eps = t_sf * 1e-9
    above = optimal_stateful_rate(t_sf + eps, t_sf, t_sl)
    assert abs(above - t_sf) <= t_sf * 1e-6


@settings(max_examples=200, deadline=None)
@given(
    pair=capacity_pairs,
    fracs=st.tuples(
        st.floats(min_value=1.0, max_value=3.0),
        st.floats(min_value=1.0, max_value=3.0),
    ),
)
def test_monotone_non_increasing_above_the_knee(pair, fracs):
    """Past the knee, more load can only mean less state."""
    t_sf, t_sl = pair
    lo, hi = sorted(t_sf * f for f in fracs)
    assert (
        optimal_stateful_rate(hi, t_sf, t_sl)
        <= optimal_stateful_rate(lo, t_sf, t_sl) + 1e-9
    )


@settings(max_examples=200, deadline=None)
@given(pair=capacity_pairs,
       frac=st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
def test_full_utilization_in_the_shedding_regime(pair, frac):
    """Second branch of (8): the node is pinned at exactly 100%.

    ``frac`` interpolates the load between T_SF and T_SL.
    """
    t_sf, t_sl = pair
    load = t_sf + frac * (t_sl - t_sf)
    stateful = optimal_stateful_rate(load, t_sf, t_sl)
    if 0.0 < stateful:
        utilization = utilization_at(stateful, load - stateful, t_sf, t_sl)
        assert abs(utilization - 1.0) <= 1e-9


@settings(max_examples=200, deadline=None)
@given(pair=capacity_pairs, frac=st.floats(min_value=1.0, max_value=4.0))
def test_zero_state_at_and_beyond_the_stateless_limit(pair, frac):
    t_sf, t_sl = pair
    # Allow for float residue of (1 - beta * t_sl) at exactly t = T_SL.
    assert optimal_stateful_rate(t_sl * frac, t_sf, t_sl) <= 1e-9 * t_sl


@settings(max_examples=100, deadline=None)
@given(
    pairs=st.lists(capacity_pairs, min_size=1, max_size=5),
)
def test_series_optimum_consistent_with_equation_8(pairs):
    """At the LP optimum every node's share *is* equation (8)'s answer
    for the optimal throughput, and every node is fully utilized."""
    try:
        throughput, shares = series_optimal_throughput(pairs)
    except ValueError:
        # Heterogeneous enough that the closed form hands off to the LP.
        return
    assert throughput > 0
    for (t_sf, t_sl), share in zip(pairs, shares):
        expected = optimal_stateful_rate(throughput, t_sf, t_sl)
        assert abs(share - expected) <= max(1e-6, 1e-9 * t_sl)
        utilization = utilization_at(
            share, max(0.0, throughput - share), t_sf, t_sl
        )
        assert abs(utilization - 1.0) <= 1e-6


# ---------------------------------------------------------------------------
# Algorithms 1 and 2: the distributed realization
# ---------------------------------------------------------------------------

class _StubProxy:
    """Minimal proxy double: fixed thresholds + a broadcast recorder."""

    def __init__(self, t_sf: float, t_sl: float):
        self._pair = (t_sf, t_sl)
        self.broadcasts = []

    def resource_thresholds(self, resource: str):
        return self._pair

    def broadcast_overload(self, **kwargs):
        self.broadcasts.append(kwargs)


def _policy(t_sf=10_360.0, t_sl=12_300.0, **config):
    policy = ServartukaPolicy(ServartukaConfig(**config))
    proxy = _StubProxy(t_sf, t_sl)
    policy.attach(proxy)
    policy.on_period(0.0)  # arm the first period
    return policy, proxy


# One decide() call: (path index, already_stateful, in_transaction, is_exit).
decision_calls = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.booleans(),
        st.booleans(),
        st.booleans(),
    ),
    max_size=200,
)


@settings(max_examples=100, deadline=None)
@given(calls=decision_calls, myshare=st.integers(min_value=0, max_value=50))
def test_algorithm1_counter_conservation(calls, myshare):
    """Every received request lands in exactly one bucket per path:
    stateful, forwarded-already-stateful (FASF), or relinquished."""
    policy, _ = _policy()
    for index, already, in_txn, is_exit in calls:
        stats = policy.path(DELIVER if is_exit else f"P{index}")
        stats.myshare = float(myshare)
        policy.decide(f"P{index}", already, in_txn, is_exit)
    total_rcv = sum(s.rcv_count for s in policy.paths.values())
    total_sf = sum(s.sf_count for s in policy.paths.values())
    assert total_rcv == policy.tot_rcv == len(calls)
    assert total_sf == policy.tot_sf <= total_rcv
    for stats in policy.paths.values():
        assert (
            stats.sf_count + stats.fasf_count + stats.nasf_forwarded
            == stats.rcv_count
        )


@settings(max_examples=100, deadline=None)
@given(n=st.integers(min_value=0, max_value=60),
       myshare=st.integers(min_value=0, max_value=40))
def test_algorithm1_myshare_admission_rule(n, myshare):
    """Fresh non-exit requests are taken statefully iff the path's
    stateful count is still below myshare: exactly min(n, myshare)."""
    policy, _ = _policy()
    policy.path("P1").myshare = float(myshare)
    taken = sum(
        policy.decide("P1", False, False, False).stateful for _ in range(n)
    )
    assert taken == min(n, myshare)
    assert policy.path("P1").nasf_forwarded == n - taken


@settings(max_examples=60, deadline=None)
@given(calls=decision_calls)
def test_algorithm1_statefulness_guarantee(calls):
    """Upstream state is never duplicated; exit and in-transaction
    traffic is always held statefully (someone must own the call)."""
    policy, _ = _policy()
    for index, already, in_txn, is_exit in calls:
        policy.path(DELIVER if is_exit else f"P{index}").myshare = 0.0
        decision = policy.decide(f"P{index}", already, in_txn, is_exit)
        if already:
            assert not decision.stateful
        elif in_txn or is_exit:
            assert decision.stateful


def _run_period(policy, per_path_counts, elapsed=1.0, exit_count=0):
    for index, count in enumerate(per_path_counts):
        for _ in range(count):
            policy.decide(f"P{index}", False, False, False)
    for _ in range(exit_count):
        policy.decide("ignored", False, False, True)
    policy.on_period(policy._last_period_at + elapsed)


@settings(max_examples=60, deadline=None)
@given(counts=st.lists(st.integers(min_value=0, max_value=400),
                       min_size=1, max_size=3))
def test_algorithm2_below_knee_everything_unlimited(counts):
    """msg_rate <= T_SF: first branch of (8), every share unlimited and
    no overload report goes out."""
    policy, proxy = _policy(t_sf=10_360.0, t_sl=12_300.0)
    _run_period(policy, counts, elapsed=1.0)
    assert policy.last_msg_rate <= 10_360.0
    for stats in policy.paths.values():
        assert stats.myshare == math.inf
    assert proxy.broadcasts == []


@settings(max_examples=60, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=2_000, max_value=9_000),
                    min_size=1, max_size=3),
    exit_count=st.integers(min_value=0, max_value=4_000),
)
def test_algorithm2_above_knee_plans_are_feasible(counts, exit_count):
    """msg_rate > T_SF: shares are nonnegative and finite for delegable
    paths, the deliver path stays unlimited, and the planned stateful
    rate fits the feasibility bound -- or an overload report is sent."""
    t_sf, t_sl = 10_360.0, 12_300.0
    policy, proxy = _policy(t_sf=t_sf, t_sl=t_sl)
    while sum(counts) + exit_count <= t_sf:  # force the second branch
        counts = [c * 2 for c in counts]
    _run_period(policy, counts, elapsed=1.0, exit_count=exit_count)
    assert policy.last_msg_rate > t_sf

    # feasible_sf is equation (8) evaluated at the observed rate.
    expected = optimal_stateful_rate(policy.last_msg_rate, t_sf, t_sl)
    assert abs(policy.last_feasible_sf - expected) <= 1e-6 * t_sl

    planned = 0.0
    for key, stats in policy.paths.items():
        if key == DELIVER:
            assert stats.myshare == math.inf
        else:
            assert 0.0 <= stats.myshare < math.inf
            planned += stats.myshare  # elapsed == 1.0: share == rate
    overloaded = any(b["overloaded"] for b in proxy.broadcasts)
    if not overloaded:
        assert planned <= policy.last_feasible_sf * 1.05 + 1e-6


def test_algorithm2_overloaded_paths_get_forced_absorption():
    """A path that reported overload is granted exactly what it cannot
    absorb (t_ip - c_ASF_ip - t_FASF_ip, clamped at zero)."""
    from repro.core.overload import OverloadReport

    policy, _ = _policy(t_sf=10_360.0, t_sl=12_300.0)
    policy.on_overload_report(
        OverloadReport(origin="P0", overloaded=True, c_asf_rate=3_000.0,
                       sequence=1, resource="state"),
        now=0.0,
    )
    _run_period(policy, [8_000, 6_000], elapsed=1.0)
    stats = policy.paths["P0"]
    assert stats.overload.overloaded
    # 8,000 offered, 3,000 absorbable downstream, nothing already
    # stateful: this node is forced to hold the 5,000 cps remainder.
    assert stats.myshare == 8_000.0 - 3_000.0


@settings(max_examples=30, deadline=None)
@given(counts=st.lists(st.integers(min_value=0, max_value=15_000),
                       min_size=1, max_size=3))
def test_algorithm2_crash_resets_to_clean_slate(counts):
    policy, _ = _policy()
    _run_period(policy, counts, elapsed=1.0)
    policy.on_node_crash(now=5.0)
    assert policy.paths == {}
    assert policy.tot_rcv == policy.tot_sf == 0
    assert policy.last_feasible_sf == math.inf
    assert not policy.is_overloaded
