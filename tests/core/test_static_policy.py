"""Tests for the static baseline policies."""

import pytest

from repro.core.static_policy import (
    PolicyDecision,
    StaticMode,
    StaticPolicy,
    parse_static_mode,
    stateful_policy,
    stateless_policy,
)


class TestStaticPolicy:
    def test_stateless_never_takes_state(self):
        policy = stateless_policy()
        for already in (True, False):
            decision = policy.decide("n", already, False, is_exit=True)
            assert not decision.stateful

    def test_stateful_always_takes_state(self):
        """Case (i): a static stateful server duplicates state even when
        an upstream server already holds it -- the paper's waste."""
        policy = stateful_policy()
        decision = policy.decide("n", already_stateful=True,
                                 in_transaction=False, is_exit=False)
        assert decision.stateful
        assert not decision.dialog_stateful

    def test_dialog_mode_sets_flag(self):
        decision = stateful_policy(dialog=True).decide("n", False, False, False)
        assert decision.dialog_stateful

    def test_policy_names(self):
        assert stateless_policy().name == "static:stateless"
        assert stateful_policy().name == "static:transaction_stateful"

    def test_default_hooks_are_noops(self):
        policy = stateful_policy()
        policy.on_period(1.0)
        policy.on_overload_report(object(), 1.0)


class TestParseStaticMode:
    @pytest.mark.parametrize(
        "text,mode",
        [
            ("stateless", StaticMode.STATELESS),
            ("sl", StaticMode.STATELESS),
            ("stateful", StaticMode.TRANSACTION_STATEFUL),
            ("sf", StaticMode.TRANSACTION_STATEFUL),
            ("txn", StaticMode.TRANSACTION_STATEFUL),
            ("transaction-stateful", StaticMode.TRANSACTION_STATEFUL),
            ("dialog", StaticMode.DIALOG_STATEFUL),
            ("DIALOG_STATEFUL", StaticMode.DIALOG_STATEFUL),
        ],
    )
    def test_aliases(self, text, mode):
        assert parse_static_mode(text) == mode

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            parse_static_mode("quantum")


class TestPolicyDecision:
    def test_repr_kinds(self):
        assert "stateless" in repr(PolicyDecision(False))
        assert "txn" in repr(PolicyDecision(True))
        assert "dialog" in repr(PolicyDecision(True, True))
