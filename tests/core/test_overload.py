"""Tests for overload report plumbing."""

import pytest

from repro.core.overload import OverloadReport, PathOverloadState


class TestOverloadReport:
    def test_fields(self):
        report = OverloadReport("S2", True, 123.0, 4)
        assert report.origin == "S2"
        assert report.overloaded
        assert report.c_asf_rate == 123.0
        assert report.sequence == 4

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            OverloadReport("S2", True, -1.0, 0)

    def test_rejects_negative_sequence(self):
        with pytest.raises(ValueError):
            OverloadReport("S2", True, 0.0, -1)


class TestPathOverloadState:
    def test_apply_overload(self):
        state = PathOverloadState()
        assert state.apply(OverloadReport("x", True, 50.0, 1), now=2.0)
        assert state.overloaded
        assert state.c_asf_rate == 50.0
        assert state.since == 2.0

    def test_clear_resets_rate(self):
        state = PathOverloadState()
        state.apply(OverloadReport("x", True, 50.0, 1), 0.0)
        state.apply(OverloadReport("x", False, 0.0, 2), 1.0)
        assert not state.overloaded
        assert state.c_asf_rate == 0.0

    def test_stale_sequence_rejected(self):
        state = PathOverloadState()
        state.apply(OverloadReport("x", True, 50.0, 5), 0.0)
        assert not state.apply(OverloadReport("x", False, 0.0, 4), 1.0)
        assert state.overloaded  # unchanged

    def test_equal_sequence_rejected(self):
        state = PathOverloadState()
        state.apply(OverloadReport("x", True, 50.0, 5), 0.0)
        assert not state.apply(OverloadReport("x", True, 99.0, 5), 1.0)
        assert state.c_asf_rate == 50.0
