"""Tests for scenario builders (topology shape + short smoke runs)."""

import pytest

from repro.core.servartuka import ServartukaPolicy
from repro.core.static_policy import StaticPolicy
from repro.harness.runner import run_scenario
from repro.servers.proxy import DELIVER_ACTION
from repro.workloads.scenarios import (
    SINGLE_PROXY_MODES,
    ScenarioConfig,
    internal_external,
    n_series,
    parallel_fork,
    single_proxy,
    two_series,
)


class TestSingleProxy:
    @pytest.mark.parametrize("mode", sorted(SINGLE_PROXY_MODES))
    def test_modes_build(self, mode, fast_config):
        scenario = single_proxy(100, mode=mode, config=fast_config)
        assert list(scenario.proxies) == ["P1"]
        assert len(scenario.generators) == 1
        assert len(scenario.servers) == 1

    def test_no_lookup_routes_directly(self, fast_config):
        scenario = single_proxy(100, mode="no_lookup", config=fast_config)
        assert not scenario.proxies["P1"].route_table.has_deliver()

    def test_lookup_modes_deliver(self, fast_config):
        scenario = single_proxy(100, mode="stateless", config=fast_config)
        assert scenario.proxies["P1"].route_table.has_deliver()

    def test_auth_mode_wires_credentials(self, fast_config):
        scenario = single_proxy(100, mode="authentication", config=fast_config)
        proxy = scenario.proxies["P1"]
        assert proxy.config.auth_enabled
        assert proxy.credentials is not None
        assert scenario.generators[0].config.wants_auth

    def test_unknown_mode_rejected(self, fast_config):
        with pytest.raises(ValueError):
            single_proxy(100, mode="warp", config=fast_config)

    def test_auth_calls_complete(self, fast_config):
        scenario = single_proxy(4000, mode="authentication", config=fast_config)
        result = run_scenario(scenario, duration=2.0, warmup=1.0)
        assert result.throughput_cps == pytest.approx(4000, rel=0.2)
        assert result.failed_calls == 0


class TestSeries:
    def test_chain_routing(self, fast_config):
        scenario = n_series(3, 100, config=fast_config)
        assert list(scenario.proxies) == ["P1", "P2", "P3"]
        assert scenario.proxies["P1"].route_table.action_for("edge.example.net") == "P2"
        assert scenario.proxies["P2"].route_table.action_for("edge.example.net") == "P3"
        assert scenario.proxies["P3"].route_table.action_for(
            "edge.example.net"
        ) == DELIVER_ACTION

    def test_static_all_stateful(self, fast_config):
        scenario = n_series(2, 100, policy="static", config=fast_config)
        for proxy in scenario.proxies.values():
            assert isinstance(proxy.policy, StaticPolicy)
            assert "stateful" in proxy.policy.name

    def test_static_one(self, fast_config):
        scenario = n_series(3, 100, policy="static-one", config=fast_config)
        names = {
            name: proxy.policy.name for name, proxy in scenario.proxies.items()
        }
        assert names["P3"] == "static:transaction_stateful"
        assert names["P1"] == names["P2"] == "static:stateless"

    def test_static_one_custom_node(self, fast_config):
        scenario = n_series(
            3, 100, policy="static-one", static_stateful="P1", config=fast_config
        )
        assert scenario.proxies["P1"].policy.name == "static:transaction_stateful"

    def test_static_one_bad_node(self, fast_config):
        with pytest.raises(ValueError):
            n_series(2, 100, policy="static-one", static_stateful="P9",
                     config=fast_config)

    def test_servartuka_policies(self, fast_config):
        scenario = two_series(100, policy="servartuka", config=fast_config)
        for proxy in scenario.proxies.values():
            assert isinstance(proxy.policy, ServartukaPolicy)

    def test_zero_proxies_rejected(self, fast_config):
        with pytest.raises(ValueError):
            n_series(0, 100, config=fast_config)

    def test_smoke_run_completes_calls(self, fast_config):
        scenario = two_series(6000, policy="servartuka", config=fast_config)
        result = run_scenario(scenario, duration=2.0, warmup=1.0)
        assert result.throughput_cps == pytest.approx(6000, rel=0.2)
        assert result.trying_ratio == pytest.approx(1.0, abs=0.05)


class TestInternalExternal:
    def test_two_flows(self, fast_config):
        scenario = internal_external(100, 0.8, config=fast_config)
        assert len(scenario.generators) == 2
        rates = {g.name: g.config.rate for g in scenario.generators}
        assert rates["uac_ext"] == pytest.approx(rates["uac_int"] * 4, rel=1e-6)

    def test_degenerate_fractions(self, fast_config):
        only_internal = internal_external(100, 0.0, config=fast_config)
        assert [g.name for g in only_internal.generators] == ["uac_int"]
        only_external = internal_external(100, 1.0, config=fast_config)
        assert [g.name for g in only_external.generators] == ["uac_ext"]

    def test_bad_fraction(self, fast_config):
        with pytest.raises(ValueError):
            internal_external(100, -0.1, config=fast_config)

    def test_s1_exits_internal_flow(self, fast_config):
        scenario = internal_external(100, 0.5, config=fast_config)
        s1_routes = scenario.proxies["S1"].route_table
        assert s1_routes.action_for("near.example.net") == DELIVER_ACTION
        assert s1_routes.action_for("far.example.net") == "S2"

    def test_smoke_run(self, fast_config):
        scenario = internal_external(6000, 0.5, policy="servartuka",
                                     config=fast_config)
        result = run_scenario(scenario, duration=2.0, warmup=1.0)
        assert result.throughput_cps == pytest.approx(6000, rel=0.2)


class TestParallelFork:
    def test_static_roles(self, fast_config):
        scenario = parallel_fork(100, policy="static", config=fast_config)
        assert scenario.proxies["F"].policy.name == "static:stateless"
        assert scenario.proxies["U"].policy.name == "static:transaction_stateful"
        assert scenario.proxies["L"].policy.name == "static:transaction_stateful"

    def test_inverted_static(self, fast_config):
        scenario = parallel_fork(
            100, policy="static", static_front_stateful=True, config=fast_config
        )
        assert scenario.proxies["F"].policy.name == "static:transaction_stateful"

    def test_share_split(self, fast_config):
        scenario = parallel_fork(100, upper_share=0.7, config=fast_config)
        rates = {g.name: g.config.rate for g in scenario.generators}
        assert rates["uac_u"] == pytest.approx(rates["uac_l"] * 7 / 3, rel=1e-6)

    def test_bad_share(self, fast_config):
        with pytest.raises(ValueError):
            parallel_fork(100, upper_share=1.0, config=fast_config)

    def test_smoke_run(self, fast_config):
        scenario = parallel_fork(8000, policy="servartuka", config=fast_config)
        result = run_scenario(scenario, duration=2.0, warmup=1.0)
        assert result.throughput_cps == pytest.approx(8000, rel=0.2)


class TestScenarioPlumbing:
    def test_offered_paper_cps_round_trips_scale(self, fast_config):
        scenario = two_series(500, config=fast_config)
        assert scenario.offered_paper_cps == pytest.approx(500)

    def test_set_total_rate_preserves_shares(self, fast_config):
        scenario = internal_external(100, 0.8, config=fast_config)
        scenario.set_total_rate(200)
        rates = {g.name: g.config.rate for g in scenario.generators}
        assert rates["uac_ext"] == pytest.approx(rates["uac_int"] * 4, rel=1e-6)
        assert scenario.offered_paper_cps == pytest.approx(200)

    def test_make_policy_specs(self, fast_config):
        assert isinstance(fast_config.make_policy("servartuka"), ServartukaPolicy)
        with pytest.raises(ValueError):
            fast_config.make_policy("chaotic")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(scale=0)


class TestConfigCoerce:
    def test_none_gives_defaults(self):
        config = ScenarioConfig.coerce(None)
        assert isinstance(config, ScenarioConfig)
        assert config.engine == ScenarioConfig().engine

    def test_instance_passes_through(self, fast_config):
        assert ScenarioConfig.coerce(fast_config) is fast_config

    def test_string_is_engine_shorthand(self):
        assert ScenarioConfig.coerce("turbo").engine == "turbo"

    def test_dict_is_partial_payload(self):
        config = ScenarioConfig.coerce({"scale": 75.0, "seed": 11})
        assert config.scale == 75.0
        assert config.seed == 11
        # Unset knobs fill with constructor defaults.
        assert config.engine == ScenarioConfig().engine

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError, match="config must be"):
            ScenarioConfig.coerce(3.14)

    def test_builders_accept_every_coercible_form(self):
        for form in (None, "fast", {"scale": 80.0}):
            scenario = two_series(100, config=form)
            assert scenario.proxies


class TestConfigKwargDeprecation:
    """Per-builder config-field kwargs still work but warn; the one
    idiom going forward is ``config=``."""

    def test_seed_kwarg_warns_and_applies(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            scenario = n_series(2, 100, seed=33)
        assert scenario.config.seed == 33

    def test_engine_and_scale_kwargs_warn(self):
        with pytest.warns(DeprecationWarning):
            scenario = single_proxy(100, engine="turbo", scale=80.0)
        assert scenario.config.engine == "turbo"
        assert scenario.config.scale == 80.0

    def test_kwarg_overrides_config_field(self):
        with pytest.warns(DeprecationWarning):
            scenario = two_series(
                100, config=ScenarioConfig(seed=1), seed=9
            )
        assert scenario.config.seed == 9

    def test_config_idiom_does_not_warn(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", DeprecationWarning)
            two_series(100, config=ScenarioConfig(seed=5))

    def test_unknown_kwargs_still_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            two_series(100, nonsense=True)
