"""Behavioral tests for the workload-diversity scenario families.

The engine differential battery already proves these families are
bit-identical across rungs; here we check they actually *do* what
their names promise: registrations churn and refresh, the B2BUA
bridges two legs, the flash crowd ramps and survives a restart, and
heavy-tailed holds draw long calls with mid-call re-INVITEs.
"""

import pytest

from repro.harness.runner import run_scenario
from repro.workloads.scenarios import (
    ScenarioConfig,
    b2bua_chain,
    flash_crowd,
    heavy_tail,
    register_churn,
)


@pytest.fixture
def config(fast_timers):
    # Default-length SIP timers would outlast these short runs; the
    # fast battery timers keep retransmission paths cheap.
    return ScenarioConfig(
        scale=100.0, seed=3, monitor_period=0.5, timers=fast_timers
    )


class TestRegisterChurn:
    def test_population_registers_and_refreshes(self, config):
        scenario = register_churn(
            4_000, subscribers=1_000, refresh_interval=0.5, config=config
        )
        assert scenario.registrars, "builder must wire a registrar client"
        run_scenario(scenario, duration=3.0, warmup=1.0)
        reg = scenario.registrars[0]
        sent = reg.metrics.counter("registers_sent").value
        confirmed = reg.metrics.counter("registers_confirmed").value
        # 10 sim-subscribers refreshing every 0.5s over ~4s of run.
        assert sent >= 40
        assert confirmed >= 0.95 * sent
        # The registrar proxy processed them as registrations.
        proxy = scenario.proxies["P1"]
        assert proxy.metrics.counter("registrations").value >= confirmed

    def test_bindings_stay_live_under_churn(self, config):
        scenario = register_churn(
            4_000, subscribers=500, refresh_interval=0.5, config=config
        )
        run_scenario(scenario, duration=3.0, warmup=1.0)
        reg = scenario.registrars[0]
        live = sum(
            1 for aor in reg.aors
            if scenario.location.is_registered(aor, "uas1")
        )
        assert live == len(reg.aors), "churned bindings lapsed mid-run"

    def test_digest_storm_authenticates_every_refresh(self, config):
        scenario = register_churn(
            4_000, subscribers=500, refresh_interval=0.5, auth="digest",
            config=config,
        )
        result = run_scenario(scenario, duration=3.0, warmup=1.0)
        reg = scenario.registrars[0]
        assert reg.metrics.counter("registers_confirmed").value > 0
        # Calls still complete while the auth storm runs.
        assert result.throughput_cps > 0

    def test_validation(self, config):
        with pytest.raises(ValueError):
            register_churn(1_000, subscribers=0, config=config)
        with pytest.raises(ValueError):
            register_churn(1_000, auth="md5-sess", config=config)


class TestB2buaChain:
    def test_bridges_both_legs(self, config):
        scenario = b2bua_chain(5_000, config=config)
        assert scenario.b2buas, "builder must wire the B2BUA"
        result = run_scenario(scenario, duration=3.0, warmup=1.0)
        b2b = scenario.b2buas[0]
        received = b2b.metrics.counter("calls_received").value
        bridged = b2b.metrics.counter("b2b_invites_sent").value
        completed = b2b.metrics.counter("calls_completed").value
        assert received > 0
        # Every accepted A-leg re-originates exactly one B-leg.
        assert bridged == received
        assert completed > 0.9 * received
        assert result.throughput_cps > 0

    def test_proxies_route_around_the_b2bua(self, config):
        scenario = b2bua_chain(5_000, config=config)
        # P1 fronts the B2BUA; P2 fronts the callee side.
        assert set(scenario.proxies) == {"P1", "P2"}
        uas = scenario.servers[0]
        run_scenario(scenario, duration=2.0, warmup=1.0)
        assert uas.calls_received > 0


class TestFlashCrowd:
    def test_profile_registers_transients(self, config):
        scenario = flash_crowd(
            4_000, shape="spike", peak_factor=3.0, period=1.0, config=config
        )
        assert len(scenario.loop.transients) >= 2, (
            "ramp edges must be registered so hybrid never jumps them"
        )

    @pytest.mark.parametrize("shape", ["step", "spike", "diurnal"])
    def test_shapes_run(self, shape, config):
        scenario = flash_crowd(
            4_000, shape=shape, peak_factor=2.0, period=1.0, config=config
        )
        result = run_scenario(scenario, duration=3.0, warmup=0.5)
        assert result.throughput_cps > 0

    def test_restart_avalanche_crashes_and_recovers(self, config):
        scenario = flash_crowd(
            4_000, shape="spike", peak_factor=2.0, period=1.0,
            restart_node="P2", restart_at=1.0, downtime=0.4, config=config,
        )
        assert scenario.faults is not None
        run_scenario(scenario, duration=3.0, warmup=0.5)
        assert scenario.faults.crashes == 1
        assert scenario.faults.restarts == 1
        assert scenario.proxies["P2"].alive, "P2 must be back up"

    def test_validation(self, config):
        with pytest.raises(ValueError):
            flash_crowd(1_000, shape="tsunami", config=config)
        with pytest.raises(ValueError, match="restart_at"):
            flash_crowd(1_000, restart_node="P2", config=config)
        with pytest.raises(ValueError):
            flash_crowd(
                1_000, restart_node="P9", restart_at=1.0, config=config
            )


class TestHeavyTail:
    def test_long_holds_leave_calls_up(self, config):
        scenario = heavy_tail(
            4_000, hold_time=5.0, hold_dist="pareto", hold_alpha=1.8,
            config=config,
        )
        scenario.start()
        scenario.loop.run_until(2.0)
        gen = scenario.generators[0]
        # Mean hold of 5s over a 2s run: nearly every attempted call is
        # still up -- the dialog state the paper's algorithm must hold.
        assert gen.calls_attempted > 0
        assert gen.calls_completed < 0.5 * gen.calls_attempted

    @pytest.mark.parametrize("dist", ["fixed", "lognormal", "pareto"])
    def test_distributions_complete(self, dist, config):
        scenario = heavy_tail(
            4_000, hold_time=0.2, hold_dist=dist, config=config
        )
        result = run_scenario(scenario, duration=3.0, warmup=1.0, drain=2.0)
        assert result.throughput_cps > 0

    def test_reinvites_traverse_the_dialog(self, config):
        scenario = heavy_tail(
            4_000, hold_time=0.5, hold_dist="lognormal", hold_sigma=0.5,
            reinvite_after=0.2, config=config,
        )
        run_scenario(scenario, duration=3.0, warmup=1.0, drain=2.0)
        gen = scenario.generators[0]
        uas = scenario.servers[0]
        confirmed = gen.metrics.counter("reinvites_confirmed").value
        assert confirmed > 0, "no mid-call re-INVITE ever completed"
        assert uas.metrics.counter("reinvites_received").value >= confirmed

    def test_validation(self, config):
        with pytest.raises(ValueError):
            heavy_tail(1_000, hold_dist="zipf", config=config)
