"""The declarative scenario-spec DSL (``repro.workloads.spec``)."""

import json
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.parallel import SCENARIO_BUILDERS
from repro.workloads.scenarios import Scenario
from repro.workloads.spec import ScenarioSpec

EXAMPLES = pathlib.Path(__file__).parents[2] / "examples" / "specs"

TOML_DOC = """
[scenario]
builder = "heavy_tail"
label = "tails"

[scenario.params]
hold_time = 0.5
hold_dist = "pareto"

[config]
scale = 200.0
seed = 4
engine = "fast"

[load]
rate = 2000.0

[run]
duration = 6.0
warmup = 2.0
drain = 1.0
"""


class TestParsing:
    def test_toml(self):
        spec = ScenarioSpec.from_toml(TOML_DOC)
        assert spec.builder == "heavy_tail"
        assert spec.label == "tails"
        assert spec.rate == 2000.0
        assert spec.params == {"hold_time": 0.5, "hold_dist": "pareto"}
        assert spec.config == {"scale": 200.0, "seed": 4, "engine": "fast"}
        assert (spec.duration, spec.warmup, spec.drain) == (6.0, 2.0, 1.0)

    def test_run_section_defaults(self):
        spec = ScenarioSpec.from_dict({
            "scenario": {"builder": "single_proxy"},
            "load": {"rate": 100.0},
        })
        assert (spec.duration, spec.warmup, spec.drain) == (10.0, 4.0, 0.0)
        assert spec.label == "single_proxy"
        assert spec.config is None

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            ScenarioSpec.from_dict({
                "scenario": {"builder": "single_proxy"},
                "load": {"rate": 1.0},
                "workload": {},
            })

    def test_unknown_scenario_key_rejected(self):
        with pytest.raises(ValueError, match=r"\[scenario\]"):
            ScenarioSpec.from_dict({
                "scenario": {"builder": "single_proxy", "rate": 5.0},
                "load": {"rate": 1.0},
            })

    def test_unknown_run_key_rejected(self):
        with pytest.raises(ValueError, match=r"\[run\]"):
            ScenarioSpec.from_dict({
                "scenario": {"builder": "single_proxy"},
                "load": {"rate": 1.0},
                "run": {"length": 5.0},
            })

    def test_missing_load_rejected(self):
        with pytest.raises(ValueError, match="load"):
            ScenarioSpec.from_dict({"scenario": {"builder": "single_proxy"}})

    def test_unknown_builder_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario builder"):
            ScenarioSpec(builder="nonesuch", rate=100.0)

    def test_reserved_params_rejected(self):
        for key in ("rate", "config"):
            with pytest.raises(ValueError, match="params must not set"):
                ScenarioSpec(
                    builder="single_proxy", rate=100.0, params={key: 1}
                )

    def test_bad_config_fails_at_parse_time(self):
        with pytest.raises(Exception):
            ScenarioSpec(
                builder="single_proxy", rate=100.0,
                config={"engine": "warp-drive"},
            )

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(builder="single_proxy", rate=0.0)
        with pytest.raises(ValueError):
            ScenarioSpec(builder="single_proxy", rate=1.0, duration=0.0)
        with pytest.raises(ValueError):
            ScenarioSpec(builder="single_proxy", rate=1.0, warmup=-1.0)


class TestPathsAndCoerce:
    def test_from_path_dispatches_on_suffix(self, tmp_path):
        toml_file = tmp_path / "spec.toml"
        toml_file.write_text(TOML_DOC)
        json_file = tmp_path / "spec.json"
        json_file.write_text(ScenarioSpec.from_toml(TOML_DOC).to_json())
        assert ScenarioSpec.from_path(toml_file) == \
            ScenarioSpec.from_path(json_file)

    def test_from_path_unknown_suffix(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("x")
        with pytest.raises(ValueError, match="toml or"):
            ScenarioSpec.from_path(path)

    def test_coerce(self, tmp_path):
        spec = ScenarioSpec.from_toml(TOML_DOC)
        assert ScenarioSpec.coerce(spec) is spec
        assert ScenarioSpec.coerce(spec.to_dict()) == spec
        path = tmp_path / "s.toml"
        path.write_text(TOML_DOC)
        assert ScenarioSpec.coerce(str(path)) == spec
        with pytest.raises(TypeError):
            ScenarioSpec.coerce(42)


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = ScenarioSpec.from_toml(TOML_DOC)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = ScenarioSpec.from_toml(TOML_DOC)
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        # to_json is canonical: stable under a second round trip.
        again = ScenarioSpec.from_json(spec.to_json())
        assert again.to_json() == spec.to_json()

    # Config keys restricted to scalar knobs every engine accepts;
    # nested tables (timers, hybrid) have their own coercion tests.
    @settings(max_examples=40, deadline=None)
    @given(
        builder=st.sampled_from(sorted(SCENARIO_BUILDERS)),
        rate=st.floats(min_value=0.5, max_value=1e6,
                       allow_nan=False, allow_infinity=False),
        duration=st.floats(min_value=0.1, max_value=1e4,
                           allow_nan=False, allow_infinity=False),
        warmup=st.floats(min_value=0.0, max_value=1e4,
                         allow_nan=False, allow_infinity=False),
        drain=st.floats(min_value=0.0, max_value=1e4,
                        allow_nan=False, allow_infinity=False),
        label=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=20,
        ),
        config=st.fixed_dictionaries(
            {},
            optional={
                "scale": st.floats(min_value=1.0, max_value=500.0,
                                   allow_nan=False, allow_infinity=False),
                "seed": st.integers(min_value=0, max_value=2**31),
                "engine": st.sampled_from(
                    ["reference", "copy", "fast", "turbo"]
                ),
                "monitor_period": st.floats(
                    min_value=0.05, max_value=5.0,
                    allow_nan=False, allow_infinity=False,
                ),
            },
        ),
    )
    def test_property_round_trip_and_stable_key(
        self, builder, rate, duration, warmup, drain, label, config
    ):
        spec = ScenarioSpec(
            builder=builder, rate=rate, config=config or None,
            label=label, duration=duration, warmup=warmup, drain=drain,
        )
        back = ScenarioSpec.from_json(spec.to_json())
        # Labels default to the builder name on both sides.
        assert back.label == (label or builder)
        assert back.rate == spec.rate
        assert back.config == spec.config
        assert (back.duration, back.warmup, back.drain) == (
            spec.duration, spec.warmup, spec.drain
        )
        # The executor cache key survives serialisation untouched.
        assert back.run_spec().key() == spec.run_spec().key()


class TestExecution:
    def test_build_wires_a_scenario(self):
        spec = ScenarioSpec.from_toml(TOML_DOC)
        scenario = spec.build()
        assert isinstance(scenario, Scenario)
        assert scenario.proxies
        assert scenario.generators

    def test_run_spec_payload_shape(self):
        spec = ScenarioSpec.from_toml(TOML_DOC)
        payload = spec.run_spec().payload
        assert payload["builder"] == "heavy_tail"
        assert payload["kwargs"]["rate"] == 2000.0
        assert payload["duration"] == 6.0

    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES.glob("*.toml")), ids=lambda p: p.stem
    )
    def test_example_specs_parse_and_build(self, path):
        spec = ScenarioSpec.from_path(path)
        assert spec.builder in SCENARIO_BUILDERS
        scenario = spec.build()
        assert isinstance(scenario, Scenario)

    def test_examples_exist(self):
        assert len(list(EXAMPLES.glob("*.toml"))) >= 4
