"""Tests for load profiles."""

import pytest

from repro.sim.events import EventLoop
from repro.workloads.callgen import LoadProfile, LoadStep, apply_profile


class FakeGenerator:
    def __init__(self, rate):
        self.config = type("Cfg", (), {"rate": rate})()
        self.history = []

    def set_rate(self, rate):
        self.config.rate = rate
        self.history.append(rate)


class TestLoadStep:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadStep(0, 1)
        with pytest.raises(ValueError):
            LoadStep(1, 0)


class TestProfiles:
    def test_constant(self):
        profile = LoadProfile.constant(100, 10)
        assert profile.total_duration == 10
        assert len(profile.steps) == 1

    def test_staircase_matches_paper_sweep(self):
        """Paper: start at 20 cps, increase in steps of 20."""
        profile = LoadProfile.staircase(20, 100, 20, step_duration=5)
        assert [s.rate for s in profile.steps] == [20, 40, 60, 80, 100]
        assert profile.total_duration == 25

    def test_staircase_validation(self):
        with pytest.raises(ValueError):
            LoadProfile.staircase(100, 50, 10, 1)
        with pytest.raises(ValueError):
            LoadProfile.staircase(10, 50, 0, 1)

    def test_ramp_midpoints(self):
        profile = LoadProfile.ramp(0.0001, 100, duration=10, segments=4)
        rates = [s.rate for s in profile.steps]
        assert rates == sorted(rates)
        assert len(rates) == 4
        assert rates[0] < 25 and rates[-1] > 75

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LoadProfile([])

    def test_boundaries(self):
        profile = LoadProfile([LoadStep(10, 2), LoadStep(20, 3)])
        assert profile.boundaries() == [(0.0, 10), (2.0, 20)]


class TestApplyProfile:
    def test_rates_preserve_shares(self):
        loop = EventLoop()
        big = FakeGenerator(80.0)
        small = FakeGenerator(20.0)
        profile = LoadProfile([LoadStep(1000, 1), LoadStep(500, 1)])
        end = apply_profile(loop, [big, small], profile)
        loop.run()
        assert end == pytest.approx(2.0)
        assert big.history == [pytest.approx(800), pytest.approx(400)]
        assert small.history == [pytest.approx(200), pytest.approx(100)]

    def test_requires_generators(self):
        with pytest.raises(ValueError):
            apply_profile(EventLoop(), [], LoadProfile.constant(1, 1))

    def test_requires_positive_base_rates(self):
        with pytest.raises(ValueError):
            apply_profile(
                EventLoop(), [FakeGenerator(0.0)], LoadProfile.constant(1, 1)
            )
