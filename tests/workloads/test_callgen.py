"""Tests for load profiles."""

import pytest

from repro.sim.events import EventLoop
from repro.workloads.callgen import LoadProfile, LoadStep, apply_profile


class FakeGenerator:
    def __init__(self, rate):
        self.config = type("Cfg", (), {"rate": rate})()
        self.history = []

    def set_rate(self, rate):
        self.config.rate = rate
        self.history.append(rate)


class TestLoadStep:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadStep(0, 1)
        with pytest.raises(ValueError):
            LoadStep(1, 0)


class TestProfiles:
    def test_constant(self):
        profile = LoadProfile.constant(100, 10)
        assert profile.total_duration == 10
        assert len(profile.steps) == 1

    def test_staircase_matches_paper_sweep(self):
        """Paper: start at 20 cps, increase in steps of 20."""
        profile = LoadProfile.staircase(20, 100, 20, step_duration=5)
        assert [s.rate for s in profile.steps] == [20, 40, 60, 80, 100]
        assert profile.total_duration == 25

    def test_staircase_validation(self):
        with pytest.raises(ValueError):
            LoadProfile.staircase(100, 50, 10, 1)
        with pytest.raises(ValueError):
            LoadProfile.staircase(10, 50, 0, 1)

    def test_ramp_midpoints(self):
        profile = LoadProfile.ramp(0.0001, 100, duration=10, segments=4)
        rates = [s.rate for s in profile.steps]
        assert rates == sorted(rates)
        assert len(rates) == 4
        assert rates[0] < 25 and rates[-1] > 75

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LoadProfile([])

    def test_boundaries(self):
        profile = LoadProfile([LoadStep(10, 2), LoadStep(20, 3)])
        assert profile.boundaries() == [(0.0, 10), (2.0, 20)]

    def test_zero_duration_step_rejected(self):
        # A zero-duration step would put two boundaries at the same
        # instant with an ambiguous rate between them.
        with pytest.raises(ValueError):
            LoadProfile([LoadStep(10, 2), LoadStep(20, 0.0)])

    def test_back_to_back_ramps_compose(self):
        """Concatenated up/down ramps keep strictly increasing boundaries."""
        up = LoadProfile.ramp(10, 100, duration=4, segments=4)
        down = LoadProfile.ramp(100, 10, duration=4, segments=4)
        profile = LoadProfile(list(up.steps) + list(down.steps))
        assert profile.total_duration == pytest.approx(8.0)
        times = [t for t, _ in profile.boundaries()]
        assert times == sorted(times)
        assert len(set(times)) == len(times), "coincident ramp edges"
        rates = [r for _, r in profile.boundaries()]
        assert rates[:4] == sorted(rates[:4])
        assert rates[4:] == sorted(rates[4:], reverse=True)


class TestApplyProfile:
    def test_rates_preserve_shares(self):
        loop = EventLoop()
        big = FakeGenerator(80.0)
        small = FakeGenerator(20.0)
        profile = LoadProfile([LoadStep(1000, 1), LoadStep(500, 1)])
        end = apply_profile(loop, [big, small], profile)
        loop.run()
        assert end == pytest.approx(2.0)
        assert big.history == [pytest.approx(800), pytest.approx(400)]
        assert small.history == [pytest.approx(200), pytest.approx(100)]

    def test_end_time_offsets_from_loop_now(self):
        """apply_profile schedules relative to *now*, not t=0."""
        loop = EventLoop()
        gen = FakeGenerator(50.0)
        loop.run_until(3.0)
        profile = LoadProfile([LoadStep(100, 1.5), LoadStep(200, 2.5)])
        end = apply_profile(loop, [gen], profile)
        assert end == pytest.approx(3.0 + 4.0)
        loop.run_until(end)
        assert gen.history == [pytest.approx(100), pytest.approx(200)]

    def test_edges_registered_as_transients(self):
        loop = EventLoop()
        profile = LoadProfile([LoadStep(10, 1), LoadStep(20, 1)])
        apply_profile(loop, [FakeGenerator(10.0)], profile)
        # One transient per step edge, so hybrid never jumps across one.
        assert len(loop.transients) >= len(profile.steps)

    def test_requires_generators(self):
        with pytest.raises(ValueError):
            apply_profile(EventLoop(), [], LoadProfile.constant(1, 1))

    def test_requires_positive_base_rates(self):
        with pytest.raises(ValueError):
            apply_profile(
                EventLoop(), [FakeGenerator(0.0)], LoadProfile.constant(1, 1)
            )
