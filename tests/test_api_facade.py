"""Tests for the stable ``repro.api`` facade.

The facade's import surface is pinned by ``tests/api_surface.txt``;
changing it is an API-stability event that must show up as a diff of
that file (CI enforces the same check).
"""

import pathlib

import pytest

import repro.api as api
from repro.harness.runner import RunResult
from repro.harness.saturation import SweepResult
from repro.workloads.scenarios import Scenario

SURFACE_FILE = pathlib.Path(__file__).parent / "api_surface.txt"


class TestSurface:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name, None) is not None, name

    def test_no_private_leakage(self):
        assert not [name for name in api.__all__ if name.startswith("_")]

    def test_surface_matches_pinned_file(self):
        pinned = SURFACE_FILE.read_text().split()
        assert sorted(api.__all__) == pinned, (
            "repro.api surface changed; update tests/api_surface.txt "
            "deliberately if this is intentional"
        )

    def test_topologies_enumerates_builders(self):
        assert set(api.TOPOLOGIES) == {
            "single_proxy", "n_series", "internal_external", "parallel_fork",
            "generated", "register_churn", "b2bua_chain", "flash_crowd",
            "heavy_tail",
        }


class TestTopologyOracle:
    def test_generate_topology_returns_generated(self):
        gen = api.generate_topology("chain", size=4, seed=2)
        assert isinstance(gen, api.GeneratedTopology)
        assert gen.n_proxies == 4

    def test_solve_topology_fixed_routing(self):
        gen = api.generate_topology("tree", size=7, seed=2)
        solution = api.solve_topology(gen, backend="simplex")
        assert isinstance(solution, api.LPSolution)
        solution.verify()
        assert solution.throughput > 0

    def test_solve_topology_free_routing_upper_bounds_fixed(self):
        gen = api.generate_topology("mesh", size=12, seed=2)
        fixed = api.solve_topology(gen, backend="simplex")
        free = api.solve_topology(gen, free_routing=True, backend="simplex")
        assert free.throughput >= fixed.throughput - 1e-6

    def test_generate_topology_keyword_only(self):
        with pytest.raises(TypeError):
            api.generate_topology("chain", 4)


class TestKeywordOnly:
    def test_run_scenario_rejects_positional_rate(self):
        with pytest.raises(TypeError):
            api.run_scenario("single_proxy", 3000)

    def test_sweep_rejects_positional_loads(self):
        with pytest.raises(TypeError):
            api.sweep("single_proxy", [3000])

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            api.run_scenario("ring", rate=100)
        with pytest.raises(ValueError):
            api.sweep("ring", loads=[100])

    def test_unknown_quality_rejected(self):
        with pytest.raises(ValueError):
            api.run_experiment("lp", quality="turbo")


class TestRunScenario:
    def test_returns_result_with_obs_none_by_default(self):
        result = api.run_scenario(
            "single_proxy", rate=2000, mode="stateless", scale=50.0,
            duration=2.0, warmup=1.0, cache=False,
        )
        assert isinstance(result, RunResult)
        assert result.obs is None
        assert result.control is None
        assert result.throughput_cps > 1000

    def test_control_attaches_snapshot(self):
        result = api.run_scenario(
            "single_proxy", rate=2000, mode="stateless", scale=50.0,
            duration=2.0, warmup=1.0, cache=False, control="occupancy",
        )
        assert result.control is not None
        proxy = result.control["proxies"]["P1"]
        assert proxy["policy"] == "occupancy"
        assert proxy["decisions"]
        assert {"seen", "admitted", "rejected"} <= set(proxy["stats"])

    def test_observe_attaches_snapshot(self):
        result = api.run_scenario(
            "single_proxy", rate=2000, mode="transaction_stateful",
            scale=50.0, duration=2.0, warmup=1.0, cache=False,
            observe="cpu",
        )
        assert result.obs is not None
        assert "P1" in result.obs["profiles"]
        assert result.obs["profiles"]["P1"]["jobs"] > 0

    def test_observe_does_not_change_metrics(self):
        kwargs = dict(rate=2000, mode="stateless", scale=50.0, seed=9,
                      duration=2.0, warmup=1.0, cache=False)
        plain = api.run_scenario("single_proxy", **kwargs)
        observed = api.run_scenario("single_proxy", observe="all", **kwargs)
        assert plain.to_payload() == observed.to_payload()

    def test_faults_run_inline(self):
        schedule = api.FaultSchedule().crash(1.5, "P1", downtime=0.5)
        result = api.run_scenario(
            "single_proxy", rate=1000, mode="stateless", scale=50.0,
            duration=2.0, warmup=1.0, faults=schedule,
        )
        assert isinstance(result, RunResult)

    def test_config_overrides_compose(self):
        config = api.ScenarioConfig(scale=50.0, seed=1)
        result = api.run_scenario(
            "single_proxy", rate=1500, mode="stateless", config=config,
            seed=4, engine="fast", duration=2.0, warmup=1.0, cache=False,
        )
        assert isinstance(result, RunResult)


class TestSweepAndCapacity:
    def test_sweep_returns_sweep_result(self):
        sweep = api.sweep(
            "single_proxy", loads=[1500, 2500], mode="stateless",
            scale=50.0, duration=1.5, warmup=0.5, cache=False,
        )
        assert isinstance(sweep, SweepResult)
        assert len(sweep) == 2

    def test_cache_round_trip_identical(self, tmp_path):
        kwargs = dict(loads=[1800], mode="stateless", scale=50.0,
                      duration=1.5, warmup=0.5, cache=True,
                      cache_dir=str(tmp_path))
        cold = api.sweep("single_proxy", **kwargs)
        warm = api.sweep("single_proxy", **kwargs)
        assert (cold.points[0].result.to_payload()
                == warm.points[0].result.to_payload())

    def test_find_capacity(self):
        sweep = api.find_capacity(
            "single_proxy", hint=4000, mode="stateless", scale=50.0,
            duration=1.0, warmup=0.5, points=2, refine=False, cache=False,
        )
        assert isinstance(sweep, SweepResult)
        assert sweep.max_throughput > 0


class TestExperiments:
    def test_experiment_listing(self):
        listing = api.experiments()
        assert "fig3-breakdown" in listing
        assert all(isinstance(v, str) for v in listing.values())

    def test_run_experiment_lp(self):
        figure = api.run_experiment("lp")
        assert isinstance(figure, api.FigureData)
        assert figure.comparisons


class TestMakeScenario:
    def test_builds_live_scenario(self):
        scenario = api.make_scenario(
            "n_series", rate=1000, n=2, scale=50.0, observe="cpu",
        )
        assert isinstance(scenario, Scenario)
        assert scenario.observer is not None
        assert scenario.config.observe.cpu

    def test_control_threads_through(self):
        scenario = api.make_scenario(
            "n_series", rate=1000, n=2, scale=50.0, control="occupancy",
        )
        assert scenario.config.control is not None
        assert scenario.config.control.policy == "occupancy"
        for proxy in scenario.proxies.values():
            assert proxy.control is not None
            assert proxy.control.kind == "occupancy"

    def test_control_config_object_accepted(self):
        config = api.ControlConfig("window", window=16)
        scenario = api.make_scenario(
            "single_proxy", rate=500, scale=50.0, control=config,
        )
        assert scenario.config.control.window == 16
