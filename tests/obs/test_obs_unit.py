"""Unit tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.harness.runner import run_scenario
from repro.obs.observe import Observer, ObserveConfig
from repro.obs.profile import (
    FUNCTIONALITIES,
    STATE_FUNCTIONALITIES,
    CpuProfiler,
    functionality_of,
)
from repro.obs.spans import build_call_spans, render_spans, spans_by_call
from repro.sip.timers import TimerPolicy
from repro.workloads.scenarios import ScenarioConfig, n_series, single_proxy


def observed_config(observe="all", **overrides):
    kwargs = dict(
        scale=50.0,
        seed=7,
        noise_sigma=0.30,
        monitor_period=0.5,
        timers=TimerPolicy(t1=0.05, t2=0.2, t4=0.2),
        observe=observe,
    )
    kwargs.update(overrides)
    return ScenarioConfig(**kwargs)


class TestFunctionalityOf:
    def test_control_site_wins_over_component(self):
        assert functionality_of("parsing", "control-msg") == "control-msg"
        assert functionality_of("routing", "control-msg") == "control-msg"

    def test_parse_components(self):
        assert functionality_of("parsing", None) == "parse"
        assert functionality_of("lumping", "state-create") == "parse"

    def test_authentication(self):
        assert functionality_of("authentication", "forward") == "auth"

    def test_match_components_are_state_lookup(self):
        assert functionality_of("lookup", None) == "state-lookup"
        assert functionality_of("hashing", "state-create") == "state-lookup"

    def test_state_components_follow_site(self):
        for site in STATE_FUNCTIONALITIES:
            assert functionality_of("state", site) == site
            assert functionality_of("memory", site) == site

    def test_state_components_without_state_site_are_forward(self):
        assert functionality_of("state", None) == "forward"
        assert functionality_of("memory", "forward") == "forward"

    def test_everything_else_is_forward(self):
        assert functionality_of("routing", None) == "forward"
        assert functionality_of("baseline", "state-create") == "forward"

    def test_every_result_is_in_the_taxonomy(self):
        components = ["parsing", "lumping", "authentication", "lookup",
                      "hashing", "state", "memory", "routing", "baseline"]
        sites = [None, "forward", "control-msg", *STATE_FUNCTIONALITIES]
        for component in components:
            for site in sites:
                assert functionality_of(component, site) in FUNCTIONALITIES


class TestCpuProfiler:
    def test_record_accumulates_both_axes(self):
        profiler = CpuProfiler("P1")
        profiler.record("state-create", 0.002,
                        {"parsing": 0.001, "state": 0.0005})
        profiler.record(None, 0.001, {"routing": 0.001})
        assert profiler.jobs == 2
        assert profiler.seconds == pytest.approx(0.003)
        assert profiler.site_jobs == {"state-create": 1, "forward": 1}
        assert profiler.functionality_seconds["parse"] == pytest.approx(0.001)
        assert profiler.functionality_seconds["state-create"] == (
            pytest.approx(0.0005))
        assert profiler.functionality_seconds["forward"] == (
            pytest.approx(0.001))

    def test_shares_sum_to_one(self):
        profiler = CpuProfiler("P1")
        profiler.record("state-create", 0.004,
                        {"parsing": 0.003, "state": 0.001})
        shares = profiler.functionality_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["parse"] == pytest.approx(0.75)

    def test_state_ops_share(self):
        profiler = CpuProfiler("P1")
        profiler.record("state-create", 0.004,
                        {"state": 0.001, "routing": 0.003})
        assert profiler.state_ops_share() == pytest.approx(0.25)

    def test_empty_profiler(self):
        profiler = CpuProfiler("P1")
        assert profiler.functionality_shares() == {}
        assert profiler.state_ops_share() == 0.0

    def test_count_only_events(self):
        profiler = CpuProfiler("P1")
        profiler.count("timer")
        profiler.count("timer")
        assert profiler.event_counts == {"timer": 2}
        assert profiler.seconds == 0.0

    def test_snapshot_is_json_serializable(self):
        profiler = CpuProfiler("P1")
        profiler.record("state-lookup", 0.001, {"hashing": 0.001})
        profiler.count("timer")
        snapshot = profiler.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["node"] == "P1"
        assert snapshot["site_jobs"] == {"state-lookup": 1}


class TestObserveConfig:
    def test_coerce_off_spellings(self):
        assert ObserveConfig.coerce(None) is None
        assert ObserveConfig.coerce(False) is None
        assert ObserveConfig.parse("none") is None
        assert ObserveConfig.parse("off") is None
        assert ObserveConfig.parse("") is None

    def test_coerce_all_spellings(self):
        for spec in (True, "all", "cpu,telemetry,spans"):
            config = ObserveConfig.coerce(spec)
            assert config.cpu and config.telemetry and config.spans

    def test_parse_subset(self):
        config = ObserveConfig.parse("cpu, telemetry")
        assert config.cpu and config.telemetry and not config.spans

    def test_parse_unknown_part_rejected(self):
        with pytest.raises(ValueError, match="unknown observe parts"):
            ObserveConfig.parse("cpu,flamegraph")

    def test_everything_off_rejected(self):
        with pytest.raises(ValueError):
            ObserveConfig(cpu=False, telemetry=False, spans=False)

    def test_coerce_passthrough_and_dict(self):
        config = ObserveConfig(cpu=True, telemetry=False, spans=False)
        assert ObserveConfig.coerce(config) is config
        assert ObserveConfig.coerce({"cpu": True, "telemetry": False,
                                     "spans": False}) == config

    def test_coerce_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ObserveConfig.coerce(42)

    def test_payload_round_trip(self):
        config = ObserveConfig(cpu=False, telemetry=True, spans=True,
                               trace_max_entries=500, trace_sample_every=3)
        assert ObserveConfig.from_payload(config.to_payload()) == config

    def test_equality(self):
        assert ObserveConfig() == ObserveConfig()
        assert ObserveConfig() != ObserveConfig(spans=True)


class TestObserver:
    def test_profiler_factory_respects_config(self):
        observer = Observer(ObserveConfig(cpu=False, telemetry=True))
        assert observer.profiler_for("P1") is None
        observer = Observer(ObserveConfig(cpu=True, telemetry=False))
        assert observer.profiler_for("P1") is observer.profiler_for("P1")
        assert observer.telemetry_for("P1") is None

    def test_telemetry_keying_by_resource(self):
        observer = Observer(ObserveConfig())
        state = observer.telemetry_for("P1", "state")
        auth = observer.telemetry_for("P1", "auth")
        assert state is not auth
        assert set(observer.telemetries) == {"P1", "P1/auth"}

    def test_snapshot_shape(self):
        observer = Observer(ObserveConfig())
        observer.profiler_for("P1")
        snapshot = observer.snapshot()
        assert set(snapshot) == {"config", "profiles", "telemetry"}
        assert "spans" not in snapshot  # spans not enabled


class TestScenarioIntegration:
    def test_telemetry_records_periods(self):
        scenario = n_series(2, 400.0, policy="servartuka",
                            config=observed_config("telemetry"))
        run_scenario(scenario, duration=4.0, warmup=1.0)
        telemetry = scenario.observer.telemetries["P1"]
        assert telemetry.periods, "Algorithm-2 periods should be recorded"
        sample = telemetry.periods[0]
        assert sample["branch"] in ("hold-all", "shed", "forced-only")
        assert set(sample) == {"time", "msg_rate", "feasible_sf", "branch",
                               "overload_active", "paths"}
        for entry in sample["paths"].values():
            assert set(entry) == {"rcv", "sf", "fasf", "nasf_forwarded",
                                  "myshare", "path_overloaded"}

    def test_profiler_attached_and_populated(self):
        scenario = single_proxy(400.0, mode="transaction_stateful",
                                config=observed_config("cpu"))
        run_scenario(scenario, duration=3.0, warmup=1.0)
        profiler = scenario.observer.profilers["P1"]
        assert profiler.jobs > 0
        shares = profiler.functionality_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert profiler.state_ops_share() > 0

    def test_spans_from_traced_run(self):
        scenario = single_proxy(200.0, mode="transaction_stateful",
                                config=observed_config("spans"))
        assert scenario.observer.trace is not None
        run_scenario(scenario, duration=3.0, warmup=0.0)
        spans = spans_by_call(scenario.observer.trace)
        assert spans
        call_id, root = next(iter(spans.items()))
        assert root.name == "call"
        phases = {child.name for child in root.children}
        assert "setup" in phases
        setup = next(c for c in root.children if c.name == "setup")
        assert any(d.node == "P1" for d in setup.children)
        text = render_spans(root)
        assert "setup" in text and "dwell @P1" in text

    def test_full_snapshot_is_json_serializable(self):
        scenario = single_proxy(300.0, mode="transaction_stateful",
                                config=observed_config("all"))
        run_scenario(scenario, duration=2.0, warmup=0.5)
        snapshot = scenario.observer.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert "spans" in snapshot


class TestBuildCallSpansEdgeCases:
    def test_empty_entries(self):
        assert build_call_spans([]) is None
