"""Sanity checks for the measured Figure-3 breakdown panel."""

import pytest

from repro.core.costmodel import FIG3_TOTALS
from repro.harness.figures import FigureData, Quality, figure3_breakdown
from repro.obs import STATE_FUNCTIONALITIES

CHEAP = Quality("test", scale=50.0, duration=2.5, warmup=1.0,
                sweep_points=2, fig7_fractions=[0.5])


@pytest.fixture(scope="module")
def breakdown():
    return figure3_breakdown(CHEAP)


def state_share(figure, mode):
    return sum(
        row[3] for row in figure.rows
        if row[0] == mode and row[1] in STATE_FUNCTIONALITIES
    )


class TestFigure3Breakdown:
    def test_returns_figure_data_for_every_mode(self, breakdown):
        assert isinstance(breakdown, FigureData)
        assert {row[0] for row in breakdown.rows} == set(FIG3_TOTALS)

    def test_shares_sum_to_one_per_mode(self, breakdown):
        for mode in FIG3_TOTALS:
            total = sum(row[3] for row in breakdown.rows if row[0] == mode)
            assert total == pytest.approx(1.0, abs=0.01), mode

    def test_stateful_spends_more_on_state_ops(self, breakdown):
        stateless = state_share(breakdown, "stateless")
        transaction = state_share(breakdown, "transaction_stateful")
        dialog = state_share(breakdown, "dialog_stateful")
        assert transaction > stateless
        assert dialog >= transaction * 0.9
        # Stateless still pays for the state *lookup* band (per the cost
        # model) but must not record create/destroy work.
        assert not [
            row for row in breakdown.rows
            if row[0] == "stateless"
            and row[1] in ("state-create", "state-destroy")
        ]

    def test_auth_only_in_authentication_mode(self, breakdown):
        modes_with_auth = {
            row[0] for row in breakdown.rows if row[1] == "auth" and row[3] > 0
        }
        assert modes_with_auth == {"authentication"}

    def test_comparisons_track_model(self, breakdown):
        assert breakdown.comparisons
        by_quantity = {c[0]: c for c in breakdown.comparisons}
        stateless = by_quantity["stateless state-ops events/call"]
        # measured / model ratio is the last column
        assert stateless[3] == pytest.approx(1.0, abs=0.1)
        transaction = by_quantity["transaction_stateful state-ops events/call"]
        assert 0.5 < transaction[3] <= 1.1
