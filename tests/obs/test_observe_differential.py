"""Observability must be a pure observer: enabling it changes nothing.

The contract (see docs/ARCHITECTURE.md) is that with ``observe=`` on,
every compared metric -- all node metric registries and the RunResult
payload -- is *bit-identical* to the same run with observability off.
This battery proves it across three scenario families and three seeds.
"""

import pytest

from repro.harness.runner import run_scenario
from repro.sip.timers import TimerPolicy
from repro.workloads.scenarios import (
    ScenarioConfig,
    internal_external,
    n_series,
    single_proxy,
)

SEEDS = (7, 11, 23)

FAMILIES = {
    "single_proxy": lambda config: single_proxy(
        300.0, mode="transaction_stateful", config=config),
    "n_series": lambda config: n_series(
        2, 400.0, policy="servartuka", config=config),
    "internal_external": lambda config: internal_external(
        350.0, 0.5, policy="servartuka", config=config),
}


def _config(seed, observe):
    return ScenarioConfig(
        scale=50.0,
        seed=seed,
        noise_sigma=0.30,
        monitor_period=0.5,
        timers=TimerPolicy(t1=0.05, t2=0.2, t4=0.2),
        observe=observe,
    )


def _fingerprint(builder, seed, observe):
    scenario = builder(_config(seed, observe))
    result = run_scenario(scenario, duration=3.0, warmup=1.0)
    nodes = (list(scenario.proxies.values()) + scenario.servers
             + scenario.generators)
    registries = {node.name: node.metrics.snapshot() for node in nodes}
    return registries, result.to_payload(), scenario


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_observe_on_is_bit_identical(family, seed):
    builder = FAMILIES[family]
    plain_registries, plain_payload, _ = _fingerprint(builder, seed, None)
    obs_registries, obs_payload, scenario = _fingerprint(builder, seed, "all")
    assert obs_registries == plain_registries
    assert obs_payload == plain_payload
    # ... while actually having observed something.
    assert scenario.observer is not None
    assert any(p.jobs > 0 for p in scenario.observer.profilers.values())
