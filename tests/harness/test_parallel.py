"""Parallel executor unit tests: spec hashing, dedupe, caching, retry.

The pool itself (spawned workers) is exercised end-to-end by
``tests/engine/test_parallel_differential.py``; here everything runs
inline so the semantics are cheap to pin down.
"""

import pytest

from repro.harness import parallel
from repro.harness.parallel import (
    ExecutionContext,
    RunSpec,
    SpecTemplate,
    canonical_json,
    current_context,
    execution,
    run_scenario_specs,
    run_specs,
    scenario_spec,
    spec_key,
)
from repro.harness.runner import run_scenario
from repro.workloads.scenarios import ScenarioConfig, n_series

# Scale divides the test rates exactly, so offered_paper_cps round-trips
# without float noise and order assertions can compare values directly.
CONFIG = ScenarioConfig(scale=50.0, seed=3)


def _spec(rate=4000.0, **kwargs):
    return scenario_spec(
        "n_series", rate=rate, config=CONFIG, duration=1.5, warmup=0.5,
        n=2, policy="servartuka", **kwargs
    )


# ---------------------------------------------------------------------------
# Canonical hashing
# ---------------------------------------------------------------------------
def test_key_independent_of_dict_order():
    a = spec_key("scenario", {"alpha": 1, "beta": {"x": 2, "y": 3}})
    b = spec_key("scenario", {"beta": {"y": 3, "x": 2}, "alpha": 1})
    assert a == b


def test_key_independent_of_number_spelling():
    assert spec_key("scenario", {"rate": 9000}) == \
        spec_key("scenario", {"rate": 9000.0})
    # ... but different values hash differently.
    assert spec_key("scenario", {"rate": 9000}) != \
        spec_key("scenario", {"rate": 9001})


def test_key_distinguishes_bool_from_number():
    assert spec_key("k", {"flag": True}) != spec_key("k", {"flag": 1})


def test_key_includes_kind():
    assert spec_key("scenario", {"a": 1}) != spec_key("fingerprint", {"a": 1})


def test_label_excluded_from_key():
    payload = {"builder": "n_series"}
    assert RunSpec("scenario", payload, label="x").key() == \
        RunSpec("scenario", payload, label="y").key()


def test_canonical_json_stable_float_format():
    # json repr of floats is shortest-roundtrip, so equal values always
    # serialize identically regardless of how they were computed.
    assert canonical_json({"v": 0.1 + 0.2}) == canonical_json(
        {"v": 0.30000000000000004}
    )


def test_canonical_json_rejects_unserializable():
    with pytest.raises(TypeError):
        canonical_json({"v": object()})


def test_template_rejects_unknown_builder():
    with pytest.raises(ValueError):
        SpecTemplate("no_such_builder", CONFIG)


def test_template_closes_over_load():
    template = SpecTemplate("n_series", CONFIG, n=2, policy="static")
    spec = template.at(8000.0, duration=2.0, warmup=1.0)
    assert spec.kind == "scenario"
    assert spec.payload["kwargs"]["rate"] == 8000.0
    assert spec.payload["duration"] == 2.0
    # Same template, same load -> same key (template is reusable).
    assert spec.key() == template.at(8000.0, 2.0, 1.0).key()


# ---------------------------------------------------------------------------
# Inline execution semantics
# ---------------------------------------------------------------------------
def test_serial_spec_equals_direct_run():
    spec = _spec()
    result = run_scenario_specs([spec])[0]
    direct = run_scenario(
        n_series(2, 4000.0, policy="servartuka", config=CONFIG),
        duration=1.5, warmup=0.5,
    )
    # Spec-path results pass through JSON normalization; every scalar
    # field must still match the in-process run exactly.
    assert result.to_payload() == parallel._normalize(direct.to_payload())


def test_batch_dedupes_identical_specs():
    context = ExecutionContext(jobs=1)
    results = run_specs([_spec(), _spec(), _spec(rate=4500.0)],
                        context=context)
    assert results[0] == results[1]
    assert results[0] != results[2]
    assert context.stats.runs == 3
    assert context.stats.executed == 2
    assert context.stats.deduped == 1


def test_memo_spans_batches_within_context():
    context = ExecutionContext(jobs=1)
    first = run_specs([_spec()], context=context)
    second = run_specs([_spec()], context=context)
    assert first == second
    assert context.stats.executed == 1
    assert context.stats.cache_hits == 1


def test_disk_cache_round_trip(tmp_path):
    spec = _spec()
    cold = ExecutionContext(jobs=1, use_cache=True, cache_dir=str(tmp_path))
    warm = ExecutionContext(jobs=1, use_cache=True, cache_dir=str(tmp_path))
    assert run_specs([spec], context=cold) == run_specs([spec], context=warm)
    assert cold.stats.executed == 1
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == 1
    assert warm.stats.hit_rate() == 1.0


def test_results_merge_in_spec_order():
    specs = [_spec(rate=r) for r in (5000.0, 3000.0, 4000.0)]
    results = run_specs(specs)
    offered = [r["result"]["offered_cps"] for r in results]
    assert offered == [5000.0, 3000.0, 4000.0]


def test_execution_context_stack():
    assert current_context().jobs == 1
    with execution(jobs=3) as outer:
        assert current_context() is outer
        with execution(jobs=2) as inner:
            assert current_context() is inner
        assert current_context() is outer
    assert current_context().jobs == 1


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        ExecutionContext(jobs=0)


def test_jobs_clamped_to_cpu_count(monkeypatch, capsys):
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 4)
    assert parallel.clamp_jobs(3) == 3
    assert parallel.clamp_jobs(4) == 4
    assert capsys.readouterr().err == ""
    assert parallel.clamp_jobs(9) == 4
    err = capsys.readouterr().err
    assert "--jobs 9 exceeds 4 available CPUs" in err
    assert "clamping to 4" in err


def test_jobs_clamp_force_escape_hatch(monkeypatch, capsys):
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 2)
    assert parallel.clamp_jobs(16, force=True) == 16
    assert capsys.readouterr().err == ""
    context = ExecutionContext(jobs=16, force=True)
    assert context.jobs == 16
    clamped = ExecutionContext(jobs=16)
    assert clamped.jobs == 2


# ---------------------------------------------------------------------------
# Failure handling (flaky job kinds get exactly one retry)
# ---------------------------------------------------------------------------
def test_inline_retries_once_then_succeeds(monkeypatch):
    attempts = {"n": 0}

    def flaky(payload):
        attempts["n"] += 1
        if attempts["n"] == 1:
            raise RuntimeError("transient")
        return {"ok": attempts["n"]}

    monkeypatch.setitem(parallel.JOBS, "flaky", flaky)
    context = ExecutionContext(jobs=1)
    results = run_specs([RunSpec("flaky", {"x": 1}, label="flaky-job")],
                        context=context)
    assert results == [{"ok": 2}]
    assert context.stats.retried_chunks == 1


def test_inline_persistent_failure_surfaces_label(monkeypatch):
    def broken(payload):
        raise RuntimeError("always")

    monkeypatch.setitem(parallel.JOBS, "broken", broken)
    with pytest.raises(RuntimeError, match="doomed-run"):
        run_specs([RunSpec("broken", {}, label="doomed-run")],
                  context=ExecutionContext(jobs=1))


def test_bench_kind_never_cached(tmp_path, monkeypatch):
    calls = {"n": 0}

    def fake_bench(payload):
        calls["n"] += 1
        return {"wall_s": calls["n"]}

    monkeypatch.setitem(parallel.JOBS, "bench", fake_bench)
    spec = RunSpec("bench", {"scenario": "two_series"}, label="bench")
    for _ in range(2):
        context = ExecutionContext(jobs=1, use_cache=True,
                                   cache_dir=str(tmp_path))
        run_specs([spec], context=context)
    assert calls["n"] == 2  # second context re-executed: nothing cached
