"""The legacy closure path into sweep_loads/find_capacity is deprecated."""

import warnings

import pytest

from repro.harness.parallel import SpecTemplate
from repro.harness.saturation import find_capacity, sweep_loads
from repro.workloads.scenarios import single_proxy


def _factory(fast_config):
    def factory(load):
        return single_proxy(load, mode="stateless", config=fast_config)
    return factory


class TestClosureDeprecation:
    def test_sweep_loads_closure_warns(self, fast_config):
        with pytest.warns(DeprecationWarning, match="SpecTemplate"):
            sweep_loads(_factory(fast_config), [1500],
                        duration=1.0, warmup=0.5)

    def test_find_capacity_closure_warns(self, fast_config):
        with pytest.warns(DeprecationWarning):
            find_capacity(_factory(fast_config), hint=3000, duration=1.0,
                          warmup=0.5, points=2, refine=False)

    def test_spec_template_does_not_warn(self, fast_config):
        template = SpecTemplate("single_proxy", fast_config,
                                mode="stateless")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sweep_loads(template, [1500], duration=1.0, warmup=0.5)

    def test_closure_path_still_produces_results(self, fast_config):
        with pytest.warns(DeprecationWarning):
            sweep = sweep_loads(_factory(fast_config), [1500],
                                duration=1.0, warmup=0.5)
        assert sweep.points[0].result.throughput_cps > 0
