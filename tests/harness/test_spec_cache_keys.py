"""Pinned run-cache keys: spec-less payloads must hash as before.

The scenario-spec DSL rides on the same ``RunSpec`` payload that the
run cache hashes, so the one way to corrupt every existing cache entry
is to let a new payload field leak into runs that do not use it.  The
SHA-256 keys below were recorded on the commit *before* the DSL landed;
they cover every payload shape the executor emits (config defaults,
non-default knobs, engine and control selections, topogen kwargs).  If
one drifts, either a payload key was added unconditionally (make it
dormant: present only when active) or canonicalisation changed (a
cache-breaking event that needs a deliberate decision, not an
accident).
"""

from repro.harness.parallel import SpecTemplate
from repro.sip.timers import TimerPolicy
from repro.workloads.scenarios import ScenarioConfig
from repro.workloads.spec import ScenarioSpec

PINNED = {
    "series": "0c86c1effb61e817ac88a117b6257b311be6f1ec75dc881aff32812e9775a08d",
    "single": "0b2d80b0cfa2c199c2c79f54dc5a4004500dcf36648e7b94d186f27d438895e0",
    "fork": "72c7cb3b176d17ef590c50f2b0cc58f20c3b5218f33e5b45c03c00fb1d8f75f0",
    "mix": "97eb81774ae2df6a25116c7d0f9ee3579287b67ee2e0e5d526262e128639e50f",
    "generated": "02f562c9363600a64b0618904bfe020a92a1bb6649b2472656d7ac8b06f2cfc6",
}


def _specs():
    return {
        "series": SpecTemplate(
            "n_series",
            ScenarioConfig(
                scale=50.0, seed=7, monitor_period=0.5,
                timers=TimerPolicy(t1=0.05, t2=0.2, t4=0.2),
            ),
            n=2, policy="servartuka",
        ).at(9000.0, 4.0, 2.0),
        "single": SpecTemplate(
            "single_proxy", ScenarioConfig(), mode="stateless"
        ).at(8000.0, 8.0, 3.0),
        "fork": SpecTemplate(
            "parallel_fork",
            ScenarioConfig(scale=25.0, seed=3, engine="turbo"),
            policy="static",
        ).at(12000.0, 6.0, 2.0),
        "mix": SpecTemplate(
            "internal_external",
            ScenarioConfig(engine="fast", control="occupancy"),
            external_fraction=0.8,
        ).at(10000.0, 8.0, 3.0),
        "generated": SpecTemplate(
            "generated", ScenarioConfig(scale=100.0, seed=2),
            family="mesh", size=12, seed=2, heterogeneity=0.3,
        ).at(9000.0, 5.0, 2.0),
    }


def test_pre_dsl_cache_keys_unchanged():
    specs = _specs()
    drifted = {
        name: specs[name].key()
        for name in PINNED if specs[name].key() != PINNED[name]
    }
    assert not drifted, (
        f"run-cache keys drifted (cache-breaking change): {drifted}"
    )


def test_spec_file_and_programmatic_key_agree():
    """A spec document and its programmatic twin share one cache key."""
    spec = ScenarioSpec.from_dict({
        "scenario": {
            "builder": "n_series",
            "params": {"n": 2, "policy": "servartuka"},
        },
        "config": {"scale": 50.0, "seed": 7, "engine": "fast"},
        "load": {"rate": 9000.0},
        "run": {"duration": 4.0, "warmup": 2.0},
    })
    programmatic = SpecTemplate(
        "n_series",
        ScenarioConfig.from_payload(
            {"scale": 50.0, "seed": 7, "engine": "fast"}
        ),
        label="n_series", n=2, policy="servartuka",
    ).at(9000.0, duration=4.0, warmup=2.0, drain=0.0)
    assert spec.run_spec().key() == programmatic.key()


def test_label_never_hashes():
    base = ScenarioSpec(builder="single_proxy", rate=5000.0)
    labelled = ScenarioSpec(
        builder="single_proxy", rate=5000.0, label="anything-else"
    )
    assert base.run_spec().key() == labelled.run_spec().key()
