"""Overload-experiment regressions: collapse, control, composition.

Runs the critical subset of the ``overload`` experiment family at its
pinned configuration (:func:`repro.harness.figures.overload_config`)
and asserts the headline claims:

- without control the two-series chain congestion-collapses: goodput
  at 2x offered load falls below 50% of the peak;
- with rate-based (AIMD) control the chain holds >= 90% of its own
  curve peak at 2x (a flat plateau instead of a cliff);
- SERvartuka state-shedding composed with call-shedding beats either
  mechanism alone at 2x;
- the no-control/rate goodput curve matches a golden snapshot
  (``--update-golden`` to rebless);
- the dormant-overhead contract: ``control=None`` keeps the scenario
  payload free of a ``"control"`` key and leaves two pre-existing
  run-cache keys byte-identical to their pre-control values.
"""

import os

import pytest

from repro.harness import figures as figure_mod
from repro.harness.figures import QUICK, overload_config
from repro.harness.parallel import (
    SpecTemplate,
    build_scenario,
    execution,
    run_specs,
    scenario_spec,
)
from repro.harness.runner import RunResult
from repro.sip.timers import TimerPolicy
from repro.workloads.scenarios import ScenarioConfig

MULTS = (0.5, 1.0, 1.5, 2.0, 3.0)
ANCHOR = figure_mod.OVERLOAD_ANCHOR
DURATION = figure_mod.OVERLOAD_DURATION
WARMUP = figure_mod.OVERLOAD_WARMUP


def _spec(mult: float, policy: str, control):
    return scenario_spec(
        "n_series", rate=ANCHOR * mult,
        config=overload_config(QUICK, control=control),
        duration=DURATION, warmup=WARMUP,
        label=f"test-overload/{policy}/{control or 'none'}@{mult:g}x",
        n=2, policy=policy,
    )


@pytest.fixture(scope="module")
def overload_runs():
    """All simulation points this module asserts on, fanned out once."""
    specs = {}
    for mult in MULTS:
        specs[("static", None, mult)] = _spec(mult, "static", None)
        specs[("static", "rate", mult)] = _spec(mult, "static", "rate")
    specs[("servartuka", None, 2.0)] = _spec(2.0, "servartuka", None)
    specs[("static", "occupancy", 2.0)] = _spec(2.0, "static", "occupancy")
    specs[("servartuka", "occupancy", 2.0)] = _spec(
        2.0, "servartuka", "occupancy")
    keys = list(specs)
    with execution(jobs=max(1, min(8, os.cpu_count() or 1))):
        payloads = run_specs([specs[key] for key in keys])
    return {
        key: (RunResult.from_payload(payload["result"]), payload["extras"])
        for key, payload in zip(keys, payloads)
    }


def _goodput(overload_runs, policy, control, mult) -> float:
    return overload_runs[(policy, control, mult)][0].throughput_cps


def test_congestion_collapse_without_control(overload_runs):
    peak = max(_goodput(overload_runs, "static", None, m) for m in MULTS)
    at_2x = _goodput(overload_runs, "static", None, 2.0)
    assert peak > 0
    assert at_2x < 0.5 * peak, (
        f"expected congestion collapse: 2x goodput {at_2x:.0f} is "
        f"{at_2x / peak:.2f} of peak {peak:.0f}, not < 0.5"
    )
    # Collapse is monotone past the knee: 3x is no better than 2x.
    assert _goodput(overload_runs, "static", None, 3.0) <= at_2x * 1.05


def test_rate_control_defends_the_plateau(overload_runs):
    # Retention relative to the controller's OWN curve peak: the
    # controller pays an admission tax at the knee, but past it the
    # plateau must stay flat while the uncontrolled chain collapses.
    peak = max(_goodput(overload_runs, "static", "rate", m) for m in MULTS)
    at_2x = _goodput(overload_runs, "static", "rate", 2.0)
    assert at_2x >= 0.9 * peak, (
        f"rate control held only {at_2x / peak:.2f} of its peak under 2x"
    )
    # And the controlled plateau clears the collapsed goodput by a wide
    # margin -- control at 2x beats no-control at 2x by > 1.5x.
    assert at_2x > 1.5 * _goodput(overload_runs, "static", None, 2.0)
    # The controller must be shedding, not riding luck: rejects > 0 and
    # far fewer retransmissions than the collapsed run.
    extras = overload_runs[("static", "rate", 2.0)][1]
    control = extras["control"]["proxies"]
    assert sum(node["stats"]["rejected"] for node in control.values()) > 0
    controlled = overload_runs[("static", "rate", 2.0)][0].retransmissions
    collapsed = overload_runs[("static", None, 2.0)][0].retransmissions
    assert controlled * 10 < collapsed


def test_composed_beats_either_mechanism_alone(overload_runs):
    composed = _goodput(overload_runs, "servartuka", "occupancy", 2.0)
    call_shedding = _goodput(overload_runs, "static", "occupancy", 2.0)
    state_shedding = _goodput(overload_runs, "servartuka", None, 2.0)
    assert composed > call_shedding, (
        f"composed {composed:.0f} <= call-shedding alone {call_shedding:.0f}"
    )
    assert composed > state_shedding, (
        f"composed {composed:.0f} <= state-shedding alone {state_shedding:.0f}"
    )


def test_goodput_curve_golden(overload_runs, golden):
    lines = ["policy mult goodput_cps"]
    for control in (None, "rate"):
        for mult in MULTS:
            goodput = _goodput(overload_runs, "static", control, mult)
            lines.append(f"{control or 'none'} {mult:g} {goodput:.1f}")
    golden("overload_goodput.txt", "\n".join(lines) + "\n")


def test_extras_carry_decision_traces(overload_runs):
    extras = overload_runs[("static", "rate", 2.0)][1]
    proxies = extras["control"]["proxies"]
    assert set(proxies) == {"P1", "P2"}
    for node in proxies.values():
        assert node["policy"] == "rate"
        decisions = node["decisions"]
        # One decision per monitor period over the whole drive.
        assert len(decisions) >= int(
            (DURATION + WARMUP) / overload_config(QUICK).monitor_period) - 2
        assert {"time", "utilization", "seen", "admitted",
                "panic"} <= set(decisions[0])
    generators = extras["control"]["generators"]
    assert generators["uac1"]["attempted"] > 0
    # Uncontrolled runs must NOT carry the key at all (dormant extras).
    assert "control" not in overload_runs[("static", None, 2.0)][1]


# ---------------------------------------------------------------------------
# Dormant-overhead contract
# ---------------------------------------------------------------------------

def test_payload_has_no_control_key_when_off():
    payload = ScenarioConfig().to_payload()
    assert "control" not in payload
    clone = ScenarioConfig.from_payload(payload)
    assert clone.control is None
    on = ScenarioConfig(control="window")
    on_payload = on.to_payload()
    assert on_payload["control"]["policy"] == "window"
    back = ScenarioConfig.from_payload(on_payload)
    assert back.control.to_payload() == on.control.to_payload()


def test_pre_control_cache_keys_unchanged():
    """Hard-coded pre-PR spec hashes: any drift would orphan every
    existing run-cache entry for uncontrolled runs."""
    series = SpecTemplate(
        "n_series",
        ScenarioConfig(scale=50.0, seed=7, monitor_period=0.5,
                       timers=TimerPolicy(t1=0.05, t2=0.2, t4=0.2)),
        n=2, policy="servartuka",
    ).at(9000.0, 4.0, 2.0)
    assert series.key() == (
        "0c86c1effb61e817ac88a117b6257b311be6f1ec75dc881aff32812e9775a08d"
    )
    single = SpecTemplate(
        "single_proxy", ScenarioConfig(), mode="stateless",
    ).at(8000.0, 8.0, 3.0)
    assert single.key() == (
        "0b2d80b0cfa2c199c2c79f54dc5a4004500dcf36648e7b94d186f27d438895e0"
    )


def test_controlled_key_differs_and_is_stable():
    base = ScenarioConfig(scale=50.0, seed=7)
    plain = SpecTemplate("n_series", base, n=2,
                         policy="static").at(17000.0, 4.0, 2.0)
    controlled = SpecTemplate(
        "n_series", ScenarioConfig(scale=50.0, seed=7, control="rate"),
        n=2, policy="static",
    ).at(17000.0, 4.0, 2.0)
    assert plain.key() != controlled.key()
    rebuilt = build_scenario(controlled.payload)
    assert rebuilt.proxies["P1"].control is not None
    assert rebuilt.proxies["P1"].control.kind == "rate"
    # Per-proxy controllers are fresh instances, never shared.
    assert (rebuilt.proxies["P1"].control
            is not rebuilt.proxies["P2"].control)
