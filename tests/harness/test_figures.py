"""Tests for the figure-regeneration module (cheap paths only).

The full figure functions are exercised by ``benchmarks/``; here we
test the pure/cheap pieces: the LP check, Figure 3 (sub-second), the
analytic hint machinery and the FigureData container.
"""

import pytest

from repro.core.costmodel import CostModel
from repro.harness.figures import (
    FigureData,
    PAPER,
    Quality,
    QUICK,
    _fig7_lp_bound,
    _series_hints,
    chain_node_thresholds,
    figure3_profile,
    lp_optima,
)


class TestLpOptima:
    def test_reproduces_paper_numbers(self):
        figure = lp_optima(QUICK)
        assert figure.measured("two-series LP optimum") == pytest.approx(
            11247, abs=10
        )
        assert figure.measured("per-node stateful share") == pytest.approx(
            5623, abs=10
        )

    def test_free_and_fixed_agree(self):
        figure = lp_optima(QUICK)
        values = {row[0]: row[1] for row in figure.rows}
        assert values["free-routing LP"] == pytest.approx(
            values["fixed-routing LP"], rel=1e-4
        )


class TestFigure3:
    def test_model_column_exact(self):
        figure = figure3_profile(QUICK)
        for mode, paper, model, _measured in figure.rows:
            assert model == paper, mode

    def test_simulated_within_30_percent(self):
        figure = figure3_profile(QUICK)
        for row in figure.comparisons:
            assert 0.7 <= row[3] <= 1.3, row


class TestHints:
    def test_chain_thresholds_shrink_with_depth(self, cost_model):
        thresholds = chain_node_thresholds(cost_model, 3)
        t_sfs = [t for t, _ in thresholds]
        assert t_sfs == sorted(t_sfs, reverse=True)

    def test_first_node_matches_anchor_without_lookup(self, cost_model):
        thresholds = chain_node_thresholds(cost_model, 2)
        # Entry node has no lookup: capacity slightly above T_SF.
        assert thresholds[0][0] > 10360
        # Exit node at depth 1 with lookup: below T_SF.
        assert thresholds[1][0] < 10360

    def test_series_hints_ordering(self, cost_model):
        static, optimal = _series_hints(cost_model, 2)
        assert optimal > static

    def test_scale_folds_out(self):
        unscaled = chain_node_thresholds(CostModel(), 2)
        scaled = chain_node_thresholds(CostModel(scale=10.0), 2)
        for (a, b), (c, d) in zip(unscaled, scaled):
            assert a == pytest.approx(c, rel=1e-9)
            assert b == pytest.approx(d, rel=1e-9)

    def test_fig7_lp_bound_peaks_interior(self):
        model = CostModel()
        bounds = {f: _fig7_lp_bound(model, f) for f in (0.0, 0.5, 0.8, 1.0)}
        assert bounds[0.8] > bounds[0.0]
        assert bounds[0.8] > bounds[1.0]


class TestQualityPresets:
    def test_scenario_config_uses_scale(self):
        config = QUICK.scenario_config()
        assert config.scale == QUICK.scale

    def test_overrides(self):
        config = QUICK.scenario_config(via_overhead=0.0)
        assert config.via_overhead == 0.0

    def test_custom_quality(self):
        quality = Quality("x", scale=5, duration=1, warmup=0.5,
                          sweep_points=3, fig7_fractions=[0.5])
        assert quality.fig7_fractions == [0.5]


class TestFigureData:
    def test_measured_and_rows(self):
        figure = FigureData("F", "t", ["a"], [[1]],
                            comparisons=[["x", 2.0, 3.0, 1.5]])
        assert figure.measured("x") == 3.0
        assert figure.rows == [[1]]

    def test_paper_reference_table_complete(self):
        for key in ("fig4_t_sf", "fig5_static", "fig5_servartuka",
                    "fig7_lp_at_peak", "fig8_static", "lp_two_series"):
            assert key in PAPER
