"""Tests for the measurement runner."""

import pytest

from repro.harness.runner import RunResult, run_scenario
from repro.workloads.scenarios import single_proxy, two_series


class TestMeasurement:
    def test_throughput_tracks_offered_below_saturation(self, fast_config):
        scenario = single_proxy(5000, mode="transaction_stateful",
                                config=fast_config)
        result = run_scenario(scenario, duration=3.0, warmup=1.0)
        assert result.offered_cps == pytest.approx(5000, rel=1e-6)
        assert result.throughput_cps == pytest.approx(5000, rel=0.15)
        assert result.goodput_ratio == pytest.approx(1.0, abs=0.15)

    def test_utilization_scales_with_load(self, fast_config):
        low = run_scenario(
            single_proxy(3000, mode="transaction_stateful", config=fast_config),
            duration=3.0, warmup=1.0,
        )
        high = run_scenario(
            single_proxy(8000, mode="transaction_stateful", config=fast_config),
            duration=3.0, warmup=1.0,
        )
        assert high.proxy_utilization["P1"] > 2.0 * low.proxy_utilization["P1"]
        # Linear through the origin (paper Figure 4): utilization at
        # ~29% of T_SF should be ~0.29.
        assert low.proxy_utilization["P1"] == pytest.approx(3000 / 10360, rel=0.2)

    def test_trying_ratio_one_when_stateful(self, fast_config):
        scenario = single_proxy(4000, mode="transaction_stateful",
                                config=fast_config)
        result = run_scenario(scenario, duration=2.0, warmup=1.0)
        assert result.trying_ratio == pytest.approx(1.0, abs=0.02)

    def test_trying_ratio_zero_when_stateless(self, fast_config):
        scenario = single_proxy(4000, mode="stateless", config=fast_config)
        result = run_scenario(scenario, duration=2.0, warmup=1.0)
        assert result.trying_ratio == 0.0

    def test_response_time_stats_populated(self, fast_config):
        scenario = two_series(4000, config=fast_config)
        result = run_scenario(scenario, duration=2.0, warmup=1.0)
        assert result.invite_rt["count"] > 0
        assert 0 < result.invite_rt["mean"] < 0.05
        assert result.invite_rt["p95"] >= result.invite_rt["p50"]
        assert result.bye_rt["count"] > 0

    def test_per_proxy_state_split_rates(self, fast_config):
        scenario = two_series(4000, policy="static-one", config=fast_config)
        result = run_scenario(scenario, duration=2.0, warmup=1.0)
        # Exit node stateful, front stateless.
        assert result.proxy_stateful_cps["P2"] == pytest.approx(4000, rel=0.25)
        assert result.proxy_stateful_cps["P1"] == 0.0
        assert result.proxy_stateless_cps["P1"] == pytest.approx(4000, rel=0.25)

    def test_overload_flags_for_servartuka(self, fast_config):
        scenario = two_series(3000, policy="servartuka", config=fast_config)
        result = run_scenario(scenario, duration=2.0, warmup=1.0)
        assert result.proxy_overloaded == {"P1": False, "P2": False}

    def test_as_dict_round_trip(self, fast_config):
        scenario = two_series(3000, config=fast_config)
        result = run_scenario(scenario, duration=2.0, warmup=1.0)
        data = result.as_dict()
        assert data["scenario"] == "2_series"
        assert data["offered_cps"] == pytest.approx(3000)

    def test_warmup_excluded_from_window(self, fast_config):
        """Counters accumulated during warmup must not inflate rates."""
        scenario = single_proxy(4000, mode="transaction_stateful",
                                config=fast_config)
        result = run_scenario(scenario, duration=2.0, warmup=2.0)
        assert result.throughput_cps < 4000 * 1.2

    def test_validation(self, fast_config):
        scenario = single_proxy(100, config=fast_config)
        with pytest.raises(ValueError):
            run_scenario(scenario, duration=0)
        with pytest.raises(ValueError):
            run_scenario(scenario, duration=1, warmup=-1)

    def test_goodput_ratio_zero_offered(self):
        result = RunResult("x", 0.0, 1.0)
        assert result.goodput_ratio == 0.0
