"""Run-cache behaviour: round-trips, corruption tolerance, invalidation."""

import json

import pytest

from repro.harness import runcache
from repro.harness.runcache import CACHE_SCHEMA_VERSION, RunCache


@pytest.fixture
def cache(tmp_path):
    return RunCache(str(tmp_path / "cache"))


KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def test_miss_then_roundtrip(cache):
    assert cache.get(KEY) is None
    payload = {"result": {"throughput_cps": 123.5}, "extras": {"events": 7}}
    cache.put(KEY, "scenario", {"builder": "n_series"}, payload)
    assert cache.get(KEY) == payload
    # Entry records provenance alongside the result.
    entry = json.loads(cache.path_for(KEY).read_text())
    assert entry["schema"] == CACHE_SCHEMA_VERSION
    assert entry["kind"] == "scenario"
    assert entry["spec"] == {"builder": "n_series"}


def test_overwrite_replaces(cache):
    cache.put(KEY, "scenario", {}, {"v": 1})
    cache.put(KEY, "scenario", {}, {"v": 2})
    assert cache.get(KEY) == {"v": 2}


def test_corrupt_entry_reads_as_miss(cache):
    cache.put(KEY, "scenario", {}, {"v": 1})
    cache.path_for(KEY).write_text('{"schema": 1, "key": truncated')
    assert cache.get(KEY) is None
    # And a fresh put recovers it.
    cache.put(KEY, "scenario", {}, {"v": 3})
    assert cache.get(KEY) == {"v": 3}


def test_mismatched_key_reads_as_miss(cache):
    cache.put(KEY, "scenario", {}, {"v": 1})
    # Entry moved/copied under the wrong key must not be served.
    cache.path_for(OTHER).parent.mkdir(parents=True, exist_ok=True)
    cache.path_for(OTHER).write_text(cache.path_for(KEY).read_text())
    assert cache.get(OTHER) is None


def test_schema_bump_invalidates(cache, monkeypatch):
    cache.put(KEY, "scenario", {}, {"v": 1})
    monkeypatch.setattr(runcache, "CACHE_SCHEMA_VERSION",
                        CACHE_SCHEMA_VERSION + 1)
    assert cache.get(KEY) is None  # old version dir is never consulted
    cache.put(KEY, "scenario", {}, {"v": 2})
    assert cache.get(KEY) == {"v": 2}
    # Both version directories exist; stale clear keeps only the current.
    stats = cache.stats()
    assert len(stats["versions"]) == 2
    removed = cache.clear(stale_only=True)
    assert removed["removed_entries"] == 1
    assert cache.get(KEY) == {"v": 2}


def test_stats_and_clear(cache):
    assert cache.stats()["entries"] == 0
    cache.put(KEY, "scenario", {}, {"v": 1})
    cache.put(OTHER, "resilience", {}, {"v": 2})
    stats = cache.stats()
    assert stats["entries"] == 2
    assert stats["bytes"] > 0
    assert stats["versions"][f"v{CACHE_SCHEMA_VERSION}"]["current"] is True
    removed = cache.clear()
    assert removed["removed_entries"] == 2
    assert cache.stats()["entries"] == 0
    assert cache.get(KEY) is None


def test_clear_on_missing_root_is_noop(tmp_path):
    cache = RunCache(str(tmp_path / "never-created"))
    assert cache.clear() == {"removed_entries": 0, "removed_bytes": 0}
    assert cache.stats()["entries"] == 0


def test_default_cache_dir_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert runcache.default_cache_dir() == ".repro-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/elsewhere")
    assert RunCache().root.as_posix() == "/tmp/elsewhere"
