"""Tests for load sweeps and saturation search."""

import pytest

from repro.harness.runner import RunResult
from repro.harness.saturation import (
    SweepPoint,
    SweepResult,
    find_capacity,
    refine_peak,
    staircase,
    sweep_loads,
)
from repro.workloads.scenarios import single_proxy


def fake_point(offered, throughput, goodput=None):
    result = RunResult("fake", offered, 1.0)
    result.throughput_cps = throughput
    return SweepPoint(offered, result)


class TestSweepResult:
    def test_points_sorted_by_offered(self):
        sweep = SweepResult("s", [fake_point(200, 190), fake_point(100, 100)])
        assert [p.offered_cps for p in sweep.points] == [100, 200]

    def test_max_throughput(self):
        sweep = SweepResult("s", [
            fake_point(100, 100), fake_point(200, 180), fake_point(300, 150),
        ])
        assert sweep.max_throughput == 180

    def test_knee_offered(self):
        sweep = SweepResult("s", [
            fake_point(100, 100), fake_point(200, 196), fake_point(300, 150),
        ])
        assert sweep.knee_offered == 200

    def test_series_accessors(self):
        sweep = SweepResult("s", [fake_point(100, 90)])
        assert sweep.throughput_series() == [(100, 90)]
        assert len(sweep) == 1

    def test_empty(self):
        assert SweepResult("s", []).max_throughput == 0.0


class TestStaircase:
    def test_paper_increments(self):
        loads = staircase(20, 100, 20)
        assert loads == [20, 40, 60, 80, 100]

    def test_validation(self):
        with pytest.raises(ValueError):
            staircase(100, 50, 10)
        with pytest.raises(ValueError):
            staircase(10, 50, 0)


# The closure path still works but is deprecated (SpecTemplate is the
# supported source); tests/harness/test_deprecation.py asserts the
# warning fires, these just exercise the behaviour.
@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestSweepLoads:
    def test_runs_each_load_fresh(self, fast_config):
        def factory(load):
            return single_proxy(load, mode="transaction_stateful",
                                config=fast_config)

        sweep = sweep_loads(factory, [2000, 4000], duration=1.5, warmup=0.5)
        assert len(sweep) == 2
        # Below saturation throughput tracks offered load.
        assert sweep.points[0].result.throughput_cps == pytest.approx(2000, rel=0.3)
        assert sweep.points[1].result.throughput_cps == pytest.approx(4000, rel=0.3)

    def test_empty_loads_rejected(self, fast_config):
        with pytest.raises(ValueError):
            sweep_loads(lambda load: None, [], duration=1, warmup=0)


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestFindCapacity:
    def test_brackets_the_hint(self, fast_config):
        calls = []

        def factory(load):
            calls.append(load)
            return single_proxy(load, mode="transaction_stateful",
                                config=fast_config)

        sweep = find_capacity(factory, hint=10000, duration=1.0, warmup=0.5,
                              points=3, span=0.3, refine=False)
        assert min(calls) == pytest.approx(7000)
        assert max(calls) == pytest.approx(13000)
        assert len(sweep) == 3

    def test_refinement_adds_points_near_peak(self, fast_config):
        def factory(load):
            return single_proxy(load, mode="transaction_stateful",
                                config=fast_config)

        coarse = find_capacity(factory, hint=10000, duration=1.0, warmup=0.5,
                               points=3, refine=False)
        refined = find_capacity(factory, hint=10000, duration=1.0, warmup=0.5,
                                points=3, refine=True)
        assert len(refined) > len(coarse)
        assert refined.max_throughput >= coarse.max_throughput - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            find_capacity(lambda l: None, hint=0)
        with pytest.raises(ValueError):
            find_capacity(lambda l: None, hint=10, points=1)


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestRefinePeak:
    def test_short_sweeps_returned_unchanged(self):
        sweep = SweepResult("s", [fake_point(100, 90)])
        assert refine_peak(lambda l: None, sweep) is sweep

    def test_probes_straddle_peak(self, fast_config):
        probed = []

        def factory(load):
            probed.append(load)
            return single_proxy(load, mode="transaction_stateful",
                                config=fast_config)

        coarse = SweepResult("s", [
            fake_point(8000, 7900), fake_point(10000, 9500),
            fake_point(12000, 7000),
        ])
        refined = refine_peak(factory, coarse, duration=1.0, warmup=0.5)
        assert len(refined) == 7
        assert all(8000 <= load <= 12000 for load in probed)
