"""Tests for load sweeps and saturation search."""

import pytest

from repro.harness.parallel import SpecTemplate, execution
from repro.harness.runner import RunResult
from repro.harness.saturation import (
    SweepPoint,
    SweepResult,
    find_capacity,
    refine_peak,
    staircase,
    sweep_loads,
)
from repro.workloads.scenarios import single_proxy


def fake_point(offered, throughput, goodput=None):
    result = RunResult("fake", offered, 1.0)
    result.throughput_cps = throughput
    return SweepPoint(offered, result)


class TestSweepResult:
    def test_points_sorted_by_offered(self):
        sweep = SweepResult("s", [fake_point(200, 190), fake_point(100, 100)])
        assert [p.offered_cps for p in sweep.points] == [100, 200]

    def test_max_throughput(self):
        sweep = SweepResult("s", [
            fake_point(100, 100), fake_point(200, 180), fake_point(300, 150),
        ])
        assert sweep.max_throughput == 180

    def test_knee_offered(self):
        sweep = SweepResult("s", [
            fake_point(100, 100), fake_point(200, 196), fake_point(300, 150),
        ])
        assert sweep.knee_offered == 200

    def test_series_accessors(self):
        sweep = SweepResult("s", [fake_point(100, 90)])
        assert sweep.throughput_series() == [(100, 90)]
        assert len(sweep) == 1

    def test_empty(self):
        assert SweepResult("s", []).max_throughput == 0.0


class TestStaircase:
    def test_paper_increments(self):
        loads = staircase(20, 100, 20)
        assert loads == [20, 40, 60, 80, 100]

    def test_validation(self):
        with pytest.raises(ValueError):
            staircase(100, 50, 10)
        with pytest.raises(ValueError):
            staircase(10, 50, 0)

    def test_no_float_accumulation_drift(self):
        # Regression: repeated `current += step` drops the final point
        # for non-representable steps (0.07 * 10 accumulates past 0.7).
        loads = staircase(0.07, 0.7, 0.07)
        assert len(loads) == 10
        assert loads[-1] == 0.7
        assert loads == [round(0.07 * i, 6) for i in range(1, 11)]

    def test_long_staircase_stays_on_grid(self):
        loads = staircase(20, 20000, 20)
        assert len(loads) == 1000
        assert loads[0] == 20 and loads[-1] == 20000
        assert all(load == 20 * (i + 1) for i, load in enumerate(loads))


# The closure path still works but is deprecated (SpecTemplate is the
# supported source); tests/harness/test_deprecation.py asserts the
# warning fires, these just exercise the behaviour.
@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestSweepLoads:
    def test_runs_each_load_fresh(self, fast_config):
        def factory(load):
            return single_proxy(load, mode="transaction_stateful",
                                config=fast_config)

        sweep = sweep_loads(factory, [2000, 4000], duration=1.5, warmup=0.5)
        assert len(sweep) == 2
        # Below saturation throughput tracks offered load.
        assert sweep.points[0].result.throughput_cps == pytest.approx(2000, rel=0.3)
        assert sweep.points[1].result.throughput_cps == pytest.approx(4000, rel=0.3)

    def test_empty_loads_rejected(self, fast_config):
        with pytest.raises(ValueError):
            sweep_loads(lambda load: None, [], duration=1, warmup=0)


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestFindCapacity:
    def test_brackets_the_hint(self, fast_config):
        calls = []

        def factory(load):
            calls.append(load)
            return single_proxy(load, mode="transaction_stateful",
                                config=fast_config)

        sweep = find_capacity(factory, hint=10000, duration=1.0, warmup=0.5,
                              points=3, span=0.3, refine=False)
        assert min(calls) == pytest.approx(7000)
        assert max(calls) == pytest.approx(13000)
        assert len(sweep) == 3

    def test_refinement_adds_points_near_peak(self, fast_config):
        def factory(load):
            return single_proxy(load, mode="transaction_stateful",
                                config=fast_config)

        coarse = find_capacity(factory, hint=10000, duration=1.0, warmup=0.5,
                               points=3, refine=False)
        refined = find_capacity(factory, hint=10000, duration=1.0, warmup=0.5,
                                points=3, refine=True)
        assert len(refined) > len(coarse)
        assert refined.max_throughput >= coarse.max_throughput - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            find_capacity(lambda l: None, hint=0)
        with pytest.raises(ValueError):
            find_capacity(lambda l: None, hint=10, points=1)


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestRefinePeak:
    def test_short_sweeps_returned_unchanged(self):
        sweep = SweepResult("s", [fake_point(100, 90)])
        assert refine_peak(lambda l: None, sweep) is sweep

    def test_probes_straddle_peak(self, fast_config):
        probed = []

        def factory(load):
            probed.append(load)
            return single_proxy(load, mode="transaction_stateful",
                                config=fast_config)

        coarse = SweepResult("s", [
            fake_point(8000, 7900), fake_point(10000, 9500),
            fake_point(12000, 7000),
        ])
        refined = refine_peak(factory, coarse, duration=1.0, warmup=0.5)
        assert len(refined) == 7
        assert all(8000 <= load <= 12000 for load in probed)


PEAK = 10000.0  # synthetic knee for the adaptive-search unit tests


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestAdaptiveFindCapacity:
    """Model-guided search semantics against a synthetic goodput curve.

    ``run_scenario`` is stubbed out with a deterministic tent curve
    (throughput == offered up to ``PEAK``, then a fluid-model-style
    linear collapse), so the probe count and the probe positions are
    exact -- no simulation noise.
    """

    def _install_curve(self, monkeypatch, calls):
        def fake_run(scenario, duration=10.0, warmup=4.0):
            load = scenario  # the factory below passes the load through
            calls.append(load)
            result = RunResult("fake", load, 1.0)
            if load <= PEAK:
                result.throughput_cps = load
            else:
                result.throughput_cps = max(0.0, PEAK - 0.8 * (load - PEAK))
            return result

        monkeypatch.setattr(
            "repro.harness.saturation.run_scenario", fake_run
        )
        return lambda load: load

    def test_good_hint_beats_fixed_grid_budget(self, monkeypatch):
        fixed_calls, adaptive_calls = [], []
        factory = self._install_curve(monkeypatch, fixed_calls)
        fixed = find_capacity(factory, hint=PEAK)
        factory = self._install_curve(monkeypatch, adaptive_calls)
        adaptive = find_capacity(factory, hint=PEAK, adaptive=True)

        # 6 coarse + 3 refine for the grid; 3 seeds + 2 refine adaptive.
        assert len(fixed_calls) == 9
        assert len(adaptive_calls) == 5
        assert len(adaptive_calls) <= 0.6 * len(fixed_calls)

        spacing = PEAK * 2 * 0.35 / 5
        best_fixed = fixed.points[max(range(len(fixed.points)),
                                      key=lambda i: fixed.points[i].result.throughput_cps)]
        best_adaptive = adaptive.points[max(range(len(adaptive.points)),
                                            key=lambda i: adaptive.points[i].result.throughput_cps)]
        assert abs(best_adaptive.offered_cps - best_fixed.offered_cps) <= spacing + 1e-9
        assert adaptive.max_throughput == pytest.approx(fixed.max_throughput, rel=0.01)

    def test_bad_hint_walks_to_the_peak(self, monkeypatch):
        calls = []
        factory = self._install_curve(monkeypatch, calls)
        result = find_capacity(factory, hint=6000, adaptive=True)
        spacing = 6000 * 2 * 0.35 / 5
        best = max(result.points, key=lambda p: p.result.throughput_cps)
        # The walk climbed from 6000 all the way to the real knee.
        assert abs(best.offered_cps - PEAK) <= spacing + 1e-9
        # Probes stepped one spacing at a time, never skipping the peak.
        assert max(calls) <= PEAK + 2 * spacing

    def test_adaptive_without_refine_probes_bracket_only(self, monkeypatch):
        calls = []
        factory = self._install_curve(monkeypatch, calls)
        find_capacity(factory, hint=PEAK, adaptive=True, refine=False)
        spacing = PEAK * 2 * 0.35 / 5
        assert calls == [PEAK - spacing, PEAK, PEAK + spacing]

    def test_seed_bracket_clips_nonpositive_loads(self, monkeypatch):
        calls = []
        factory = self._install_curve(monkeypatch, calls)
        # spacing > hint: the low seed would be negative and is dropped.
        find_capacity(factory, hint=10, span=2.0, points=3,
                      adaptive=True, refine=False)
        assert all(load > 0 for load in calls)


class TestAdaptiveCapacityBudget:
    """End-to-end sim budget on the figure-5/figure-8 capacity queries.

    The adaptive search seeded with a knee-accurate hint (what the
    fluid/LP model provides) must answer with at most 60% of the fixed
    grid's simulations, landing within one grid spacing of the fixed
    answer.  Executed-simulation counts come from the parallel
    executor's stats, so run-cache hits would show up as free probes.
    """

    @pytest.mark.parametrize("builder,kwargs,hint", [
        ("n_series", {"n": 2, "policy": "servartuka"}, 9800.0),
        ("parallel_fork", {"policy": "servartuka"}, 11000.0),
    ])
    def test_budget_and_answer(self, fast_config, builder, kwargs, hint):
        template = SpecTemplate(builder, fast_config, **kwargs)
        with execution(jobs=1) as context:
            fixed = find_capacity(template, hint=hint,
                                  duration=1.5, warmup=0.5)
            fixed_sims = context.stats.executed
        with execution(jobs=1) as context:
            adaptive = find_capacity(template, hint=hint, adaptive=True,
                                     duration=1.5, warmup=0.5)
            adaptive_sims = context.stats.executed
        assert adaptive_sims <= 0.6 * fixed_sims
        spacing = hint * 2 * 0.35 / 5
        best_fixed = max(fixed.points,
                         key=lambda p: p.result.throughput_cps)
        best_adaptive = max(adaptive.points,
                            key=lambda p: p.result.throughput_cps)
        assert abs(best_adaptive.offered_cps - best_fixed.offered_cps) \
            <= spacing + 1e-9
