"""Run-cache contract for the hybrid engine rung.

The ``"hybrid"`` key enters the scenario payload ONLY when
``engine="hybrid"`` (same dormancy pattern as ``"control"``), so every
pre-hybrid run-cache entry for the four bit-identical engines keeps
its exact spec hash -- pinned here as literals.
"""

from repro.harness.parallel import SpecTemplate
from repro.sim.hybrid import HybridConfig
from repro.sip.timers import TimerPolicy
from repro.workloads.scenarios import ScenarioConfig


def test_payload_has_no_hybrid_key_for_other_engines():
    for engine in ("reference", "copy", "fast", "turbo"):
        payload = ScenarioConfig(engine=engine).to_payload()
        assert "hybrid" not in payload, engine
    clone = ScenarioConfig.from_payload(ScenarioConfig().to_payload())
    assert clone.hybrid is None


def test_hybrid_payload_round_trip():
    on = ScenarioConfig(engine="hybrid", hybrid={"window": 3, "guard": 2.0})
    payload = on.to_payload()
    assert payload["hybrid"]["window"] == 3
    back = ScenarioConfig.from_payload(payload)
    assert back.engine == "hybrid"
    assert back.hybrid.to_payload() == on.hybrid.to_payload()
    # engine="hybrid" with default knobs still records the key (None),
    # so hybrid runs never collide with turbo runs in the cache.
    default = ScenarioConfig(engine="hybrid").to_payload()
    assert "hybrid" in default
    assert default["hybrid"] is None


def test_hybrid_config_distinguishes_cache_keys():
    base = dict(scale=50.0, seed=7, monitor_period=0.5,
                timers=TimerPolicy(t1=0.05, t2=0.2, t4=0.2))
    turbo = SpecTemplate(
        "n_series", ScenarioConfig(engine="turbo", **base),
        n=2, policy="servartuka",
    ).at(9000.0, 4.0, 2.0)
    hybrid = SpecTemplate(
        "n_series", ScenarioConfig(engine="hybrid", **base),
        n=2, policy="servartuka",
    ).at(9000.0, 4.0, 2.0)
    tuned = SpecTemplate(
        "n_series",
        ScenarioConfig(engine="hybrid", hybrid=HybridConfig(window=3), **base),
        n=2, policy="servartuka",
    ).at(9000.0, 4.0, 2.0)
    keys = {turbo.key(), hybrid.key(), tuned.key()}
    assert len(keys) == 3


def test_pre_hybrid_cache_keys_unchanged():
    """Hard-coded pre-PR spec hashes (same literals test_overload.py
    pins): adding the hybrid rung must not orphan any existing
    run-cache entry for the bit-identical engines."""
    series = SpecTemplate(
        "n_series",
        ScenarioConfig(scale=50.0, seed=7, monitor_period=0.5,
                       timers=TimerPolicy(t1=0.05, t2=0.2, t4=0.2)),
        n=2, policy="servartuka",
    ).at(9000.0, 4.0, 2.0)
    assert series.key() == (
        "0c86c1effb61e817ac88a117b6257b311be6f1ec75dc881aff32812e9775a08d"
    )
    single = SpecTemplate(
        "single_proxy", ScenarioConfig(), mode="stateless",
    ).at(8000.0, 8.0, 3.0)
    assert single.key() == (
        "0b2d80b0cfa2c199c2c79f54dc5a4004500dcf36648e7b94d186f27d438895e0"
    )
