"""Optimality-gap experiment regressions.

Runs a small fixed cell set (one instance per family, turbo engine,
aggressive scale) end to end and asserts:

- the summary table matches a golden snapshot (``--update-golden`` to
  rebless) -- this pins the LP oracle values *and* the simulated
  Algorithm 2 goodput per cell,
- rows come back sorted by (family, proxies, heterogeneity) and every
  gap is clamped into ``[0, 1]``,
- the grid/config helpers honor their contracts (mesh flagship always
  present, scale floor, monitor period) without any simulation.
"""

import pytest

from repro.harness.figures import FULL, QUICK, STANDARD, FigureData, Quality
from repro.harness.optgap import (
    OPTGAP_MIN_SCALE,
    OPTGAP_MONITOR_PERIOD,
    optgap_config,
    optgap_grid,
    optgap_payload,
    optgap_rows,
    render_summary,
)

#: Deterministic mini-grid: one cell per family, sizes small enough to
#: simulate in seconds.  turbo is bit-identical to reference (see
#: tests/engine/test_differential.py) so the snapshot is engine-stable.
CELLS = [
    {"family": "chain", "size": 4, "heterogeneity": 0.0},
    {"family": "tree", "size": 7, "heterogeneity": 0.0},
    {"family": "mesh", "size": 12, "heterogeneity": 0.3},
]

TEST_QUALITY = Quality(
    name="optgap-test",
    scale=60.0,
    duration=4.0,
    warmup=2.0,
    sweep_points=4,
    fig7_fractions=(0.8,),
    seed=1,
    config_overrides={"engine": "turbo"},
)


@pytest.fixture(scope="module")
def rows():
    return optgap_rows(TEST_QUALITY, cells=CELLS)


def _figure(rows):
    return FigureData(
        figure_id="optgap",
        title="optgap mini-grid",
        columns=["family", "proxies", "heterogeneity",
                 "lp cps", "algorithm2 cps", "gap"],
        rows=rows,
    )


def test_summary_matches_golden(rows, golden):
    golden("optgap_summary.txt", render_summary(_figure(rows)))


def test_rows_sorted_and_gaps_bounded(rows):
    assert len(rows) == len(CELLS)
    keys = [(row[0], row[1], row[2]) for row in rows]
    assert keys == sorted(keys), "rows must be monotone in (family, n, het)"
    for family, n_proxies, het, lp_cps, achieved, gap in rows:
        assert lp_cps > 0.0
        assert achieved > 0.0
        assert 0.0 <= gap <= 1.0
        # gap is exactly the clamped shortfall, not an independent value.
        assert gap == pytest.approx(
            min(1.0, max(0.0, 1.0 - achieved / lp_cps)), abs=1e-12
        )


def test_rows_deterministic(rows):
    """A second pass over the same cells reproduces every number (the
    oracle is pure; identical specs replay from the executor's
    in-memory memo, so this also asserts memo transparency)."""
    assert optgap_rows(TEST_QUALITY, cells=CELLS) == rows


def test_payload_shape(rows):
    payload = optgap_payload(_figure(rows))
    assert payload["benchmark"] == "optgap"
    assert payload["rows"] == rows
    assert payload["columns"][-1] == "gap"


class TestGrid:
    @pytest.mark.parametrize("quality", [QUICK, STANDARD, FULL],
                             ids=lambda q: q.name)
    def test_flagship_mesh_present(self, quality):
        cells = optgap_grid(quality)
        assert any(
            cell["family"] == "mesh" and cell["size"] == 51
            for cell in cells
        )

    def test_quick_grid_is_two_by_two(self):
        cells = optgap_grid(QUICK)
        assert len(cells) == 12  # 3 families x 2 sizes x 2 het levels
        assert {cell["family"] for cell in cells} == {"chain", "tree", "mesh"}
        assert {cell["heterogeneity"] for cell in cells} == {0.0, 0.3}

    def test_full_grid_adds_sizes_and_heterogeneity(self):
        cells = optgap_grid(FULL)
        assert len(cells) > len(optgap_grid(QUICK))
        assert {cell["heterogeneity"] for cell in cells} == {0.0, 0.3, 0.6}


class TestConfig:
    def test_scale_floor(self):
        config = optgap_config(QUICK)
        assert config.scale == max(QUICK.scale, OPTGAP_MIN_SCALE)

    def test_full_scale_floored_up(self):
        assert optgap_config(FULL).scale == OPTGAP_MIN_SCALE

    def test_monitor_period_pinned(self):
        assert optgap_config(QUICK).monitor_period == OPTGAP_MONITOR_PERIOD

    def test_overrides_win(self):
        assert optgap_config(QUICK, scale=80.0).scale == 80.0
