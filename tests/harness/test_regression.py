"""Tests for the experiment regression comparator."""

import json

import pytest

from repro.harness.regression import Delta, compare, compare_files


def payload(measured, paper=100.0, name="fig5", quantity="static saturation"):
    return {
        "experiments": {
            name: {
                "comparisons": [
                    {"quantity": quantity, "paper": paper,
                     "measured": measured, "ratio": measured / paper},
                ],
            },
        },
    }


class TestDelta:
    def test_drift(self):
        delta = Delta("e", "q", 100.0, 110.0, 100.0)
        assert delta.drift == pytest.approx(0.10)

    def test_agreement_change_improvement(self):
        # Baseline was 20% off the paper, current only 5% off.
        delta = Delta("e", "q", 120.0, 105.0, 100.0)
        assert delta.agreement_change > 0

    def test_agreement_change_regression(self):
        delta = Delta("e", "q", 105.0, 130.0, 100.0)
        assert delta.agreement_change < 0

    def test_zero_baseline(self):
        assert Delta("e", "q", 0.0, 5.0, 100.0).drift == float("inf")
        assert Delta("e", "q", 0.0, 0.0, 100.0).drift == 0.0


class TestCompare:
    def test_no_change_no_regressions(self):
        report = compare(payload(95.0), payload(95.0))
        assert report.deltas and not report.regressions()

    def test_drift_away_from_paper_is_regression(self):
        report = compare(payload(95.0), payload(80.0))
        regressions = report.regressions(threshold=0.05)
        assert len(regressions) == 1
        assert regressions[0].quantity == "static saturation"

    def test_drift_toward_paper_is_improvement(self):
        report = compare(payload(80.0), payload(98.0))
        assert not report.regressions()
        assert len(report.improvements()) == 1

    def test_threshold_suppresses_noise(self):
        report = compare(payload(95.0), payload(93.0))
        assert not report.regressions(threshold=0.05)
        assert report.regressions(threshold=0.01)

    def test_missing_and_added_experiments(self):
        baseline = payload(95.0, name="fig5")
        current = payload(95.0, name="fig8")
        report = compare(baseline, current)
        assert report.missing == ["fig5"]
        assert report.added == ["fig8"]
        assert report.deltas == []

    def test_summary_mentions_regressions(self):
        report = compare(payload(95.0), payload(70.0))
        text = report.summary()
        assert "REGRESSION" in text
        assert "fig5" in text


class TestFiles:
    def test_compare_files(self, tmp_path):
        base = tmp_path / "base.json"
        curr = tmp_path / "curr.json"
        base.write_text(json.dumps(payload(95.0)))
        curr.write_text(json.dumps(payload(94.0)))
        report = compare_files(str(base), str(curr))
        assert len(report.deltas) == 1

    def test_round_trip_with_real_suite(self, tmp_path):
        """A suite export compared against itself is regression-free."""
        from repro.harness.experiments import ExperimentSuite
        from repro.harness.figures import QUICK

        suite = ExperimentSuite(QUICK)
        results = suite.run(["lp"])
        path = tmp_path / "run.json"
        suite.write_json(results, str(path))
        report = compare_files(str(path), str(path))
        assert report.deltas and not report.regressions(threshold=0.001)
