"""Tests for the experiment orchestrator (cheap experiments only)."""

import json

import pytest

from repro.harness.experiments import EXPERIMENTS, ExperimentSuite
from repro.harness.figures import QUICK


@pytest.fixture(scope="module")
def suite_and_results():
    suite = ExperimentSuite(QUICK)
    results = suite.run(["lp", "fig3"])
    return suite, results


class TestRun:
    def test_registry_covers_every_figure(self):
        expected = {"fig3", "fig3-breakdown", "fig4", "lp", "fig5", "fig6",
                    "fig7", "fig8", "three-series", "resilience", "overload",
                    "optgap"}
        assert set(EXPERIMENTS) == expected

    def test_runs_selected(self, suite_and_results):
        suite, results = suite_and_results
        assert set(results) == {"lp", "fig3"}
        assert suite.timings["lp"] >= 0

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            ExperimentSuite(QUICK).run(["fig99"])

    def test_progress_callback(self):
        seen = []
        ExperimentSuite(QUICK).run(["lp"], progress=seen.append)
        assert seen == ["lp"]


class TestExport:
    def test_json_round_trip(self, suite_and_results, tmp_path):
        suite, results = suite_and_results
        path = tmp_path / "results.json"
        suite.write_json(results, str(path))
        payload = json.loads(path.read_text())
        assert payload["quality"] == "quick"
        assert "lp" in payload["experiments"]
        lp = payload["experiments"]["lp"]
        assert lp["comparisons"][0]["quantity"] == "two-series LP optimum"
        assert lp["comparisons"][0]["ratio"] == pytest.approx(1.0, abs=0.02)

    def test_markdown_structure(self, suite_and_results, tmp_path):
        suite, results = suite_and_results
        path = tmp_path / "EXP.md"
        suite.write_markdown(results, str(path))
        text = path.read_text()
        assert text.startswith("# Experiments")
        assert "| quantity | paper | measured | ratio |" in text
        assert "Section 4.1" in text

    def test_render_all(self, suite_and_results):
        suite, results = suite_and_results
        text = suite.render_all(results)
        assert "Figure 3" in text and "Section 4.1" in text
