"""Tests for text rendering helpers."""

import pytest

from repro.harness.figures import FigureData
from repro.harness.report import (
    comparison_row,
    format_comparison,
    format_series,
    format_table,
    render_figure,
    sparkline,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[12345.6], [0.123456], [12.3], [0]])
        assert "12,346" in text
        assert "0.123" in text
        assert "12.3" in text


class TestComparison:
    def test_comparison_row(self):
        row = comparison_row("x", 100.0, 110.0)
        assert row == ["x", 100.0, 110.0, 1.1]

    def test_zero_paper_value_nan(self):
        row = comparison_row("x", 0.0, 5.0)
        assert row[3] != row[3]  # NaN

    def test_format_comparison(self):
        text = format_comparison([comparison_row("q", 10, 11)])
        assert "quantity" in text and "ratio" in text


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        line = sparkline([5, 5, 5])
        assert len(line) == 3

    def test_monotone_series_uses_range(self):
        line = sparkline(list(range(10)))
        assert line[0] == " "
        assert line[-1] == "@"

    def test_downsampling(self):
        line = sparkline(list(range(200)), width=40)
        assert len(line) == 40


class TestRenderFigure:
    def test_full_rendering(self):
        figure = FigureData(
            "Figure X",
            "A title",
            ["col"],
            [[1]],
            description="desc",
            comparisons=[["q", 1.0, 1.1, 1.1]],
            notes="a note",
        )
        text = render_figure(figure)
        assert "Figure X" in text
        assert "A title" in text
        assert "desc" in text
        assert "notes: a note" in text

    def test_measured_lookup(self):
        figure = FigureData("F", "t", ["c"], [],
                            comparisons=[["thing", 1.0, 2.0, 2.0]])
        assert figure.measured("thing") == 2.0
        with pytest.raises(KeyError):
            figure.measured("missing")

    def test_series_format(self):
        text = format_series("s", [(1, 2.0)])
        assert "offered_cps" in text
