"""Tests for the resilience experiment (crash/loss fault campaign).

The full three-placement campaign runs once (module-scoped fixture via
``resilience_figure``); its rows carry every headline number.  The
single-placement runs below are much cheaper and probe custody shift
and determinism separately.
"""

import pytest

from repro.harness.figures import QUICK
from repro.harness.resilience import (
    PLACEMENTS,
    ResilienceParams,
    build_resilience_scenario,
    resilience_figure,
    run_resilience,
)

COLUMNS = [
    "placement", "attempted", "completed", "lost", "shed_500",
    "recovered", "state_lost", "custody",
]


@pytest.fixture(scope="module")
def figure():
    return resilience_figure(QUICK)


@pytest.fixture(scope="module")
def rows_by_placement(figure):
    return {row[0]: dict(zip(COLUMNS, row)) for row in figure.rows}


class TestHeadlineOrdering:
    def test_figure_shape(self, figure):
        assert figure.figure_id == "resilience"
        assert figure.columns == COLUMNS
        assert [row[0] for row in figure.rows] == list(PLACEMENTS)

    def test_comparison_reports_ok(self, figure):
        assert len(figure.comparisons) == 1
        assert figure.comparisons[0][-1] == "ok"

    def test_calls_lost_order_by_custody(self, rows_by_placement):
        """The experiment's claim: more state custody at the crashing
        node means more unrecoverable calls."""
        lost = {p: rows_by_placement[p]["lost"] for p in PLACEMENTS}
        assert lost["static"] > lost["servartuka"] > lost["stateless"]

    def test_state_destroyed_orders_the_same_way(self, rows_by_placement):
        state = {p: rows_by_placement[p]["state_lost"] for p in PLACEMENTS}
        assert state["static"] > state["servartuka"] > state["stateless"]
        assert state["stateless"] == 0  # nothing to destroy

    def test_custody_fractions(self, rows_by_placement):
        """Static holds everything, stateless nothing, SERvartuka the
        internal (terminating) share it cannot delegate."""
        assert rows_by_placement["static"]["custody"] == pytest.approx(1.0)
        assert rows_by_placement["stateless"]["custody"] == pytest.approx(0.0)
        assert 0.0 < rows_by_placement["servartuka"]["custody"] < 1.0

    def test_overload_shedding_stays_out_of_the_signal(self, rows_by_placement):
        """Queue tolerances absorb the post-restart retransmit herd:
        'lost' means timeouts, not 500-rejections."""
        for p in PLACEMENTS:
            row = rows_by_placement[p]
            assert row["shed_500"] <= 0.02 * row["attempted"]

    def test_most_calls_still_complete(self, rows_by_placement):
        for p in PLACEMENTS:
            row = rows_by_placement[p]
            assert row["completed"] >= 0.9 * row["attempted"]


def _servartuka_outcome(external_fraction):
    params = ResilienceParams(
        external_fraction=external_fraction,
        crash_times=(2.2, 4.2, 6.2),
        run_for=8.0,
    )
    return run_resilience(params, placements=("servartuka",))["servartuka"]


class TestCustodyShift:
    def test_internal_share_sets_exposure(self):
        """Shrinking the external fraction leaves S1 holding custody of
        more traffic, so crashes destroy more of its state."""
        mostly_internal = _servartuka_outcome(0.3)
        mostly_external = _servartuka_outcome(0.7)
        assert (
            mostly_internal.custody_fraction
            > mostly_external.custody_fraction
        )
        assert mostly_internal.state_lost > mostly_external.state_lost


class TestDeterminism:
    def test_identical_rerun_is_bit_identical(self):
        params = ResilienceParams(crash_times=(2.2, 3.7), run_for=5.0,
                                  drain=7.5)
        first = run_resilience(params, placements=("static",))
        second = run_resilience(params, placements=("static",))
        assert first["static"].as_dict() == second["static"].as_dict()
        assert first["static"].crashes == 2


class TestParamsValidation:
    def test_bad_fractions_rejected(self):
        with pytest.raises(ValueError):
            ResilienceParams(headroom=0.0)
        with pytest.raises(ValueError):
            ResilienceParams(load_factor=1.5)
        with pytest.raises(ValueError):
            ResilienceParams(external_fraction=1.0)
        with pytest.raises(ValueError):
            ResilienceParams(loss=1.0)

    def test_crash_times_must_fall_inside_run(self):
        with pytest.raises(ValueError):
            ResilienceParams(crash_times=(20.2,), run_for=14.0)

    def test_crash_times_off_the_monitor_grid(self):
        """Myshare custody is consumed at the start of each planning
        period, so boundary-aligned crashes sample an artificially
        empty custody window -- rejected outright."""
        with pytest.raises(ValueError):
            ResilienceParams(crash_times=(2.5,), monitor_period=0.5)

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            build_resilience_scenario("anycast", ResilienceParams())

    def test_schedule_contents(self):
        params = ResilienceParams(crash_times=(2.2, 4.2), loss=0.1)
        events = params.schedule().events
        kinds = [e.kind for e in events]
        assert kinds.count("set_loss") == 2
        assert kinds.count("crash") == 2
        assert kinds.count("restart") == 2
