"""The CI bench-regression gate (benchmarks/check_bench_regression.py).

The gate compares within-run speedup ratios, never absolute calls/sec,
so it must (a) catch a slowdown injected into any single rung, (b) stay
quiet when the whole machine is uniformly slower, and (c) stay quiet on
ordinary run-to-run noise within tolerance.
"""

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (pathlib.Path(__file__).resolve().parents[2]
           / "benchmarks" / "check_bench_regression.py")
_spec = importlib.util.spec_from_file_location("check_bench_regression",
                                               _SCRIPT)
check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check)


def _report(scale: float = 1.0, slow_engine: str = None,
            slow_by: float = 0.2) -> dict:
    """Synthetic engine-bench report.

    ``scale`` multiplies every rung (a uniformly faster/slower host);
    ``slow_engine`` gets an extra ``slow_by`` fractional slowdown (the
    injected regression).
    """
    base = {"reference": 400.0, "copy": 600.0, "fast": 900.0,
            "turbo": 1400.0}
    scenarios = {}
    for name in ("two_series", "parallel_fig8"):
        per_engine = {}
        for engine, calls_per_sec in base.items():
            value = calls_per_sec * scale
            if engine == slow_engine:
                value *= 1.0 - slow_by
            per_engine[engine] = {"calls_per_sec": round(value, 1),
                                  "wall_s": 6.0, "calls": 8000}
        scenarios[name] = {"per_engine": per_engine, "identical": True}
    return {"benchmark": "engine", "scenarios": scenarios}


class TestCompare:
    def test_identical_reports_pass(self):
        assert check.compare(_report(), _report()) == []

    def test_uniformly_slower_host_passes(self):
        # Half-speed CI box: every ratio is unchanged, so no failure.
        assert check.compare(_report(), _report(scale=0.5)) == []

    @pytest.mark.parametrize("engine", ["reference", "copy", "fast", "turbo"])
    def test_20pct_single_rung_slowdown_fails(self, engine):
        failures = check.compare(_report(), _report(slow_engine=engine))
        assert failures, f"20% slowdown in {engine!r} was not caught"
        assert any(engine in failure for failure in failures)

    def test_noise_within_tolerance_passes(self):
        failures = check.compare(_report(), _report(slow_engine="turbo",
                                                    slow_by=0.10))
        assert failures == []

    def test_missing_rung_fails(self):
        candidate = _report()
        for name in candidate["scenarios"]:
            del candidate["scenarios"][name]["per_engine"]["turbo"]
        failures = check.compare(_report(), candidate)
        assert any("turbo" in failure and "missing" in failure
                   for failure in failures)

    def test_missing_scenario_fails(self):
        candidate = _report()
        del candidate["scenarios"]["parallel_fig8"]
        failures = check.compare(_report(), candidate)
        assert any("parallel_fig8" in failure for failure in failures)

    def test_new_rung_in_candidate_is_ignored(self):
        # A rung absent from the checked-in baseline (e.g. just added)
        # cannot regress; it only starts being gated once checked in.
        baseline = _report()
        for name in baseline["scenarios"]:
            del baseline["scenarios"][name]["per_engine"]["turbo"]
        assert check.compare(baseline, _report()) == []


def _hybrid_report(speedup: float = 8.0, quick: bool = False,
                   **overrides) -> dict:
    entry = {
        "speedup_hybrid_vs_turbo": speedup,
        "jumps": 2,
        "attempted_exact": True,
        "skipped_sim_seconds": 100.0,
    }
    entry.update(overrides)
    return {
        "benchmark": "hybrid",
        "quick": quick,
        "scenarios": {"two_series": entry},
        "max_deviation": {"goodput_pct": 0.4, "myshare_points": 0.0,
                          "outcome_pct": 0.3},
    }


class TestCheckHybrid:
    def test_contract_report_passes(self):
        assert check.check_hybrid(_hybrid_report()) == []

    def test_speedup_below_full_floor_fails(self):
        failures = check.check_hybrid(_hybrid_report(speedup=4.0))
        assert any("4.00x" in failure for failure in failures)

    def test_quick_report_uses_relaxed_floor(self):
        assert check.check_hybrid(_hybrid_report(speedup=4.0,
                                                 quick=True)) == []
        assert check.check_hybrid(_hybrid_report(speedup=1.5, quick=True))

    def test_explicit_floor_overrides_mode(self):
        assert check.check_hybrid(_hybrid_report(speedup=4.0), floor=3.0) == []

    def test_no_jumps_fails(self):
        failures = check.check_hybrid(_hybrid_report(jumps=0))
        assert any("no jumps" in failure for failure in failures)

    def test_inexact_arrivals_fail(self):
        failures = check.check_hybrid(_hybrid_report(attempted_exact=False))
        assert any("arrival replay" in failure for failure in failures)

    def test_deviation_over_contract_fails(self):
        report = _hybrid_report()
        report["max_deviation"]["goodput_pct"] = 1.3
        failures = check.check_hybrid(report)
        assert any("goodput_pct" in failure for failure in failures)

    def test_checked_in_hybrid_report_passes(self):
        checked_in = _SCRIPT.parent.parent / "BENCH_hybrid.json"
        report = json.loads(checked_in.read_text())
        assert check.check_hybrid(report) == []


class TestMain:
    def _write(self, path, report):
        path.write_text(json.dumps(report))
        return str(path)

    def test_exit_zero_on_clean_candidate(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", _report())
        candidate = self._write(tmp_path / "cand.json", _report(scale=0.9))
        assert check.main(["--baseline", baseline,
                           "--candidate", candidate]) == 0
        assert "no bench regression" in capsys.readouterr().out

    def test_exit_one_on_injected_slowdown(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", _report())
        candidate = self._write(tmp_path / "cand.json",
                                _report(slow_engine="turbo"))
        assert check.main(["--baseline", baseline,
                           "--candidate", candidate]) == 1
        assert "BENCH REGRESSION" in capsys.readouterr().err

    def test_checked_in_report_passes_against_itself(self, tmp_path):
        checked_in = str(_SCRIPT.parent.parent / "BENCH_engine.json")
        assert check.main(["--baseline", checked_in,
                           "--candidate", checked_in]) == 0

    def test_hybrid_gate_wired_into_cli(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", _report())
        candidate = self._write(tmp_path / "cand.json", _report())
        good = self._write(tmp_path / "hybrid.json", _hybrid_report())
        assert check.main(["--baseline", baseline, "--candidate", candidate,
                           "--hybrid", good]) == 0
        assert "over turbo" in capsys.readouterr().out
        bad = self._write(tmp_path / "hybrid_bad.json",
                          _hybrid_report(speedup=3.0))
        assert check.main(["--baseline", baseline, "--candidate", candidate,
                           "--hybrid", bad]) == 1
        assert check.main(["--baseline", baseline, "--candidate", candidate,
                           "--hybrid", bad, "--hybrid-floor", "2.0"]) == 0
