"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, topology_from_json


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures", "fig3"])
        assert args.ids == ["fig3"]
        assert args.quality == "quick"

    def test_unknown_quality_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--quality", "turbo"])


class TestRun:
    def test_run_json_output(self, capsys):
        rc = main([
            "run", "--topology", "series", "--rate", "4000",
            "--scale", "50", "--duration", "2", "--warmup", "1", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "2_series"
        assert payload["offered_cps"] == pytest.approx(4000)
        assert payload["throughput_cps"] > 2500

    def test_run_table_output(self, capsys):
        rc = main([
            "run", "--topology", "single", "--mode", "stateless",
            "--rate", "3000", "--scale", "50",
            "--duration", "2", "--warmup", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput_cps" in out

    def test_run_mix_topology(self, capsys):
        rc = main([
            "run", "--topology", "mix", "--external-fraction", "0.5",
            "--rate", "3000", "--scale", "50",
            "--duration", "2", "--warmup", "1", "--json",
        ])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["throughput_cps"] > 1500


class TestSweep:
    SWEEP = [
        "sweep", "--topology", "series", "--policy", "static",
        "--start", "3000", "--stop", "5000", "--step", "1000",
        "--scale", "50", "--duration", "1.5", "--warmup", "0.5",
    ]

    def test_sweep_prints_saturation(self, capsys):
        rc = main(self.SWEEP)
        assert rc == 0
        out = capsys.readouterr().out
        assert "saturation" in out
        assert "offered_cps" in out
        assert out.count("\n") >= 5  # header + 3 load rows

    def test_parallel_flags_parse(self):
        args = build_parser().parse_args(self.SWEEP + ["-j", "2", "--no-cache"])
        assert args.jobs == 2
        assert args.no_cache is True
        assert build_parser().parse_args(self.SWEEP).jobs is None

    def test_sweep_warm_cache_identical_output(self, tmp_path, capsys):
        argv = self.SWEEP + ["--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "hit_rate=100.0%" in second.err

    def test_sweep_dedupes_repeated_loads(self, tmp_path, capsys):
        # Stop is not on the step grid, so the staircase only has the 3
        # grid points; repeating the run exercises the cache, and a
        # degenerate single-point sweep exercises within-batch dedupe.
        argv = [
            "sweep", "--topology", "series", "--policy", "static",
            "--start", "4000", "--stop", "4000", "--step", "1000",
            "--scale", "50", "--duration", "1.5", "--warmup", "0.5",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        assert "executed=1" in capsys.readouterr().err
        assert main(argv) == 0
        assert "executed=0" in capsys.readouterr().err


class TestCache:
    def test_stats_empty(self, tmp_path, capsys):
        rc = main(["cache", "stats", "--dir", str(tmp_path / "none")])
        assert rc == 0
        assert "0 entries" in capsys.readouterr().out

    def test_stats_json_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(TestSweep.SWEEP + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--dir", cache_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 3
        assert stats["bytes"] > 0

        assert main(["cache", "clear", "--dir", cache_dir]) == 0
        assert "3 entries" in capsys.readouterr().out
        assert main(["cache", "stats", "--dir", cache_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_clear_stale_keeps_current(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(TestSweep.SWEEP + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--dir", cache_dir, "--stale",
                     "--json"]) == 0
        removed = json.loads(capsys.readouterr().out)
        assert removed["removed_entries"] == 0  # current version kept
        assert main(["cache", "stats", "--dir", cache_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 3


class TestFigures:
    def test_unknown_figure_id(self, capsys):
        rc = main(["figures", "fig99"])
        assert rc == 2
        assert "unknown figure ids" in capsys.readouterr().err

    def test_lp_figure_runs(self, capsys):
        rc = main(["figures", "lp"])
        assert rc == 0
        assert "11,247" in capsys.readouterr().out.replace("11247", "11,247")


class TestLp:
    def make_spec(self, tmp_path):
        spec = {
            "nodes": {"S1": [10360, 12300], "S2": [10360, 12300]},
            "edges": [["S1", "S2"]],
            "flows": [{"name": "main", "path": ["S1", "S2"], "share": 1.0}],
        }
        path = tmp_path / "topo.json"
        path.write_text(json.dumps(spec))
        return path

    def test_lp_fixed_routing(self, tmp_path, capsys):
        rc = main(["lp", str(self.make_spec(tmp_path))])
        assert rc == 0
        out = capsys.readouterr().out
        assert "admissible load: 11247" in out.replace("11,247", "11247")
        assert "S1" in out and "S2" in out

    def test_lp_free_routing(self, tmp_path, capsys):
        rc = main(["lp", str(self.make_spec(tmp_path)), "--free-routing"])
        assert rc == 0

    def test_topology_from_json_validates(self):
        with pytest.raises(KeyError):
            topology_from_json({"edges": []})

    def test_lp_backend_flag(self, tmp_path, capsys):
        spec = self.make_spec(tmp_path)
        outputs = []
        for backend in ("auto", "simplex"):
            rc = main(["lp", str(spec), "--backend", backend])
            assert rc == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_lp_bad_backend_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["lp", str(self.make_spec(tmp_path)), "--backend", "glpk"])


class TestTopogen:
    def test_topogen_reports_oracle(self, capsys):
        rc = main([
            "topogen", "--family", "mesh", "--size", "12", "--seed", "3",
            "--heterogeneity", "0.4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mesh topology: 12 proxies" in out
        assert "LP-optimal admitted load" in out
        assert "lp_utilization" in out

    def test_topogen_json_roundtrips_into_lp(self, tmp_path, capsys):
        """The dumped spec must be loadable by ``repro lp``."""
        path = tmp_path / "gen.json"
        rc = main([
            "topogen", "--family", "chain", "--size", "4", "--json",
            str(path),
        ])
        assert rc == 0
        capsys.readouterr()
        rc = main(["lp", str(path), "--backend", "simplex"])
        assert rc == 0
        assert "admissible load" in capsys.readouterr().out


class TestExperiments:
    def test_experiments_json_export(self, tmp_path, capsys):
        out = tmp_path / "res.json"
        rc = main(["experiments", "lp", "--json", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert "lp" in payload["experiments"]

    def test_experiments_markdown_export(self, tmp_path):
        out = tmp_path / "exp.md"
        rc = main(["experiments", "lp", "--markdown", str(out)])
        assert rc == 0
        assert out.read_text().startswith("# Experiments")

    def test_experiments_stdout_default(self, capsys):
        rc = main(["experiments", "lp"])
        assert rc == 0
        assert "Section 4.1" in capsys.readouterr().out


class TestTrace:
    def test_trace_prints_ladders(self, capsys):
        rc = main([
            "trace", "--topology", "series", "--rate", "100",
            "--scale", "25", "--calls", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "INVITE" in out
        assert "---" in out


class TestObserveFlags:
    def test_observe_flag_parses_everywhere(self):
        parser = build_parser()
        for argv in (
            ["run", "--observe", "cpu"],
            ["sweep", "--observe", "all"],
            ["figures", "fig3", "--observe", "cpu,telemetry"],
            ["experiments", "lp", "--observe", "none"],
        ):
            assert parser.parse_args(argv).observe == argv[-1]

    def test_engine_flag_parses_everywhere(self):
        parser = build_parser()
        assert parser.parse_args(["run", "--engine", "fast"]).engine == "fast"
        assert parser.parse_args(["figures", "fig3"]).engine is None
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--engine", "warp"])

    def test_run_observe_prints_functionality_table(self, capsys):
        rc = main([
            "run", "--topology", "single", "--rate", "2000",
            "--scale", "50", "--duration", "2", "--warmup", "1",
            "--observe", "cpu",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "functionality" in out
        assert "state-create" in out

    def test_run_observe_json_includes_obs(self, capsys):
        rc = main([
            "run", "--topology", "single", "--rate", "2000",
            "--scale", "50", "--duration", "2", "--warmup", "1",
            "--observe", "cpu", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["obs"]["profiles"]["P1"]["jobs"] > 0


class TestObsCommand:
    def test_obs_profile_and_telemetry(self, capsys):
        rc = main([
            "obs", "--topology", "series", "--rate", "3000",
            "--scale", "50", "--duration", "2", "--warmup", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "functionality" in out       # CPU profile table
        assert "control-loop telemetry" in out   # telemetry summary
        assert "P1" in out

    def test_obs_spans_and_exports(self, tmp_path, capsys):
        json_path = tmp_path / "obs.json"
        csv_dir = tmp_path / "csv"
        rc = main([
            "obs", "--topology", "single", "--rate", "200",
            "--scale", "50", "--duration", "2", "--warmup", "0.5",
            "--spans", "--calls", "1",
            "--json", str(json_path), "--csv-dir", str(csv_dir),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "setup" in out and "dwell" in out
        payload = json.loads(json_path.read_text())
        assert {"config", "profiles", "telemetry", "spans"} <= set(payload)
        assert (csv_dir / "profile.csv").exists()

    def test_fig3_breakdown_registered(self):
        args = build_parser().parse_args(["figures", "fig3-breakdown"])
        assert args.ids == ["fig3-breakdown"]
