"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, topology_from_json


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures", "fig3"])
        assert args.ids == ["fig3"]
        assert args.quality == "quick"

    def test_unknown_quality_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--quality", "turbo"])


class TestRun:
    def test_run_json_output(self, capsys):
        rc = main([
            "run", "--topology", "series", "--rate", "4000",
            "--scale", "50", "--duration", "2", "--warmup", "1", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "2_series"
        assert payload["offered_cps"] == pytest.approx(4000)
        assert payload["throughput_cps"] > 2500

    def test_run_table_output(self, capsys):
        rc = main([
            "run", "--topology", "single", "--mode", "stateless",
            "--rate", "3000", "--scale", "50",
            "--duration", "2", "--warmup", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput_cps" in out

    def test_run_mix_topology(self, capsys):
        rc = main([
            "run", "--topology", "mix", "--external-fraction", "0.5",
            "--rate", "3000", "--scale", "50",
            "--duration", "2", "--warmup", "1", "--json",
        ])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["throughput_cps"] > 1500


class TestSweep:
    def test_sweep_prints_saturation(self, capsys):
        rc = main([
            "sweep", "--topology", "series", "--policy", "static",
            "--start", "3000", "--stop", "5000", "--step", "1000",
            "--scale", "50", "--duration", "1.5", "--warmup", "0.5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "saturation" in out
        assert "offered_cps" in out
        assert out.count("\n") >= 5  # header + 3 load rows


class TestFigures:
    def test_unknown_figure_id(self, capsys):
        rc = main(["figures", "fig99"])
        assert rc == 2
        assert "unknown figure ids" in capsys.readouterr().err

    def test_lp_figure_runs(self, capsys):
        rc = main(["figures", "lp"])
        assert rc == 0
        assert "11,247" in capsys.readouterr().out.replace("11247", "11,247")


class TestLp:
    def make_spec(self, tmp_path):
        spec = {
            "nodes": {"S1": [10360, 12300], "S2": [10360, 12300]},
            "edges": [["S1", "S2"]],
            "flows": [{"name": "main", "path": ["S1", "S2"], "share": 1.0}],
        }
        path = tmp_path / "topo.json"
        path.write_text(json.dumps(spec))
        return path

    def test_lp_fixed_routing(self, tmp_path, capsys):
        rc = main(["lp", str(self.make_spec(tmp_path))])
        assert rc == 0
        out = capsys.readouterr().out
        assert "admissible load: 11247" in out.replace("11,247", "11247")
        assert "S1" in out and "S2" in out

    def test_lp_free_routing(self, tmp_path, capsys):
        rc = main(["lp", str(self.make_spec(tmp_path)), "--free-routing"])
        assert rc == 0

    def test_topology_from_json_validates(self):
        with pytest.raises(KeyError):
            topology_from_json({"edges": []})


class TestExperiments:
    def test_experiments_json_export(self, tmp_path, capsys):
        out = tmp_path / "res.json"
        rc = main(["experiments", "lp", "--json", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert "lp" in payload["experiments"]

    def test_experiments_markdown_export(self, tmp_path):
        out = tmp_path / "exp.md"
        rc = main(["experiments", "lp", "--markdown", str(out)])
        assert rc == 0
        assert out.read_text().startswith("# Experiments")

    def test_experiments_stdout_default(self, capsys):
        rc = main(["experiments", "lp"])
        assert rc == 0
        assert "Section 4.1" in capsys.readouterr().out


class TestTrace:
    def test_trace_prints_ladders(self, capsys):
        rc = main([
            "trace", "--topology", "series", "--rate", "100",
            "--scale", "25", "--calls", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "INVITE" in out
        assert "---" in out
