"""End-to-end CANCEL / caller-abandonment tests.

Callers abandon ringing calls after a patience timeout; the CANCEL must
traverse the proxy chain correctly in both stateful mode (the proxy
answers it hop-by-hop and re-issues it downstream on the forwarded
branch, RFC 3261 16.10) and stateless mode (pure relay with the
INVITE-consistent deterministic branch).
"""

import pytest

from repro.harness.runner import run_scenario
from repro.sip.timers import TimerPolicy
from repro.workloads.scenarios import ScenarioConfig, two_series

TIMERS = TimerPolicy(t1=0.05, t2=0.2, t4=0.2)


def make_scenario(policy, ring_delay, abandon_after, rate=1000):
    config = ScenarioConfig(scale=50.0, seed=13, monitor_period=0.5,
                            timers=TIMERS)
    scenario = two_series(rate, policy=policy, config=config)
    for server in scenario.servers:
        server.ring_delay = ring_delay
    for generator in scenario.generators:
        generator.config.abandon_after = abandon_after
    return scenario


class TestAbandonment:
    @pytest.mark.parametrize("policy", ["static", "stateless", "servartuka"])
    def test_impatient_callers_abandon(self, policy):
        # Phones ring for 1s but callers give up after 0.3s.
        scenario = make_scenario(policy, ring_delay=1.0, abandon_after=0.3)
        run_scenario(scenario, duration=2.0, warmup=0.5, drain=4.0)
        generator = scenario.generators[0]
        abandoned = generator.metrics.counter("calls_abandoned").value
        assert abandoned > 0
        # Every abandoned call ends in a 487 failure, not a timeout.
        failed_487 = generator.metrics.counter("failure_invite_487").value
        assert failed_487 == pytest.approx(abandoned, abs=3)
        assert generator.metrics.counter("failure_invite_timeout").value == 0
        # UAS agrees about what happened.
        uas = scenario.servers[0]
        assert uas.metrics.counter("calls_cancelled").value == pytest.approx(
            abandoned, abs=3
        )

    @pytest.mark.parametrize("policy", ["static", "stateless"])
    def test_patient_callers_unaffected(self, policy):
        scenario = make_scenario(policy, ring_delay=0.1, abandon_after=5.0)
        run_scenario(scenario, duration=2.0, warmup=0.5, drain=4.0)
        generator = scenario.generators[0]
        assert generator.metrics.counter("calls_abandoned").value == 0
        assert generator.calls_failed == 0
        assert generator.calls_completed == generator.calls_attempted

    def test_cancel_too_late_call_proceeds(self):
        """If the 200 wins the race the CANCEL is a no-op."""
        scenario = make_scenario("static", ring_delay=0.0, abandon_after=0.001)
        # abandon fires after the call is already answered.
        run_scenario(scenario, duration=1.0, warmup=0.3, drain=3.0)
        generator = scenario.generators[0]
        assert generator.calls_completed == generator.calls_attempted

    def test_stateful_proxy_answers_cancel_hop_by_hop(self):
        scenario = make_scenario("static", ring_delay=1.0, abandon_after=0.3,
                                 rate=500)
        run_scenario(scenario, duration=2.0, warmup=0.5, drain=4.0)
        p1 = scenario.proxies["P1"]
        assert p1.metrics.counter("cancels_handled").value > 0
        # The downstream 200-for-CANCEL stops at the proxy.
        assert p1.metrics.counter("cancel_responses_absorbed").value > 0

    def test_call_accounting_still_conserves(self):
        scenario = make_scenario("servartuka", ring_delay=0.8,
                                 abandon_after=0.2)
        run_scenario(scenario, duration=2.0, warmup=0.5, drain=5.0)
        generator = scenario.generators[0]
        assert generator.calls_attempted == (
            generator.calls_completed + generator.calls_failed
            + len(generator._calls)
        )
