"""Does the distributed algorithm converge to the centralized optimum?

The whole argument of the paper is that the local Algorithm 1/2 rules
realize the section 4.1 LP.  These tests measure the *runtime's* state
placement and compare it against the analytic predictions: equation
(8)'s per-node stateful level and the LP's per-node split.
"""

import pytest

from repro.core.analysis import optimal_stateful_rate
from repro.core.costmodel import Feature
from repro.harness.runner import run_scenario
from repro.sip.timers import TimerPolicy
from repro.workloads.scenarios import ScenarioConfig, two_series

FAST_TIMERS = TimerPolicy(t1=0.05, t2=0.2, t4=0.2)


def config(**overrides):
    kwargs = dict(
        scale=50.0, seed=29, noise_sigma=0.30,
        monitor_period=0.5, timers=FAST_TIMERS, via_overhead=0.0,
    )
    kwargs.update(overrides)
    return ScenarioConfig(**kwargs)


class TestEquation8Convergence:
    def test_front_node_sheds_to_the_analytic_level(self):
        """At load L > T_SF(P1), P1's measured stateful rate must track
        equation (8): (1 - beta L) / (alpha - beta)."""
        offered = 11000.0
        scenario = two_series(offered, policy="servartuka", config=config())
        result = run_scenario(scenario, duration=8.0, warmup=4.0)

        proxy = scenario.proxies["P1"]
        t_sf, t_sl = proxy.state_thresholds()
        scale = scenario.config.scale
        predicted = optimal_stateful_rate(
            offered / scale, t_sf, t_sl
        ) * scale
        measured = result.proxy_stateful_cps["P1"]
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_exit_node_absorbs_the_remainder(self):
        offered = 11000.0
        scenario = two_series(offered, policy="servartuka", config=config())
        result = run_scenario(scenario, duration=8.0, warmup=4.0)
        total_state = (
            result.proxy_stateful_cps["P1"] + result.proxy_stateful_cps["P2"]
        )
        # All delivered calls are stateful somewhere, exactly once.
        assert total_state == pytest.approx(result.delivered_cps, rel=0.12)

    def test_below_threshold_no_shedding(self):
        offered = 9000.0
        scenario = two_series(offered, policy="servartuka", config=config())
        result = run_scenario(scenario, duration=6.0, warmup=3.0)
        assert result.proxy_stateful_cps["P1"] == pytest.approx(offered, rel=0.1)
        assert result.proxy_stateful_cps["P2"] < offered * 0.05


class TestUtilizationAtOptimum:
    def test_shedding_node_runs_near_full_utilization(self):
        """Equation (8)'s second case plans the node to exactly 100%."""
        offered = 11000.0
        scenario = two_series(offered, policy="servartuka", config=config())
        result = run_scenario(scenario, duration=8.0, warmup=4.0)
        assert result.proxy_utilization["P1"] > 0.9

    def test_capacity_near_lp_bound(self):
        """Offered load at 90% of the LP bound is served nearly in full
        (the last few percent below the bound are lost to service-time
        noise and the retransmission feedback -- the same gap between
        the paper's measured 9,790 and its LP's 11,240)."""
        from repro.harness.figures import _series_hints

        cost_model = config().make_cost_model()
        _static, bound = _series_hints(cost_model, 2)
        offered = 0.9 * bound
        scenario = two_series(offered, policy="servartuka", config=config())
        result = run_scenario(scenario, duration=8.0, warmup=4.0)
        assert result.throughput_cps > 0.9 * offered
