"""Smoke tests for the figure pipelines at ultra-cheap quality.

The benchmarks run the real reproductions; these tests only verify the
end-to-end plumbing of each figure function (sweeps, comparisons,
series) on a tiny scale/duration so the unit suite exercises the code
paths in seconds.
"""

import pytest

from repro.harness.figures import Quality, figure4_utilization, figure5_two_series, figure8_parallel

SMOKE = Quality(
    "smoke", scale=60.0, duration=2.0, warmup=1.0, sweep_points=2,
    fig7_fractions=[0.8], seed=2,
)


@pytest.fixture(scope="module")
def fig4():
    return figure4_utilization(SMOKE)


@pytest.fixture(scope="module")
def fig5():
    return figure5_two_series(SMOKE)


class TestFigure4Pipeline:
    def test_comparisons_present(self, fig4):
        quantities = [row[0] for row in fig4.comparisons]
        assert "stateful saturation cps" in quantities
        assert "stateless saturation cps" in quantities

    def test_series_and_rows_align(self, fig4):
        assert len(fig4.rows) >= 8
        assert set(fig4.series) == {"stateful_utilization",
                                    "stateless_utilization"}

    def test_utilization_in_range(self, fig4):
        for _mode, _offered, utilization, _tp in fig4.rows:
            assert 0.0 <= utilization <= 1.0

    def test_saturations_ordered(self, fig4):
        stateful = fig4.measured("stateful saturation cps")
        stateless = fig4.measured("stateless saturation cps")
        assert stateless > stateful > 0


class TestFigure5Pipeline:
    def test_shape(self, fig5):
        assert fig5.columns == ["config", "offered_cps", "throughput_cps",
                                "trying_ratio"]
        configs = {row[0] for row in fig5.rows}
        assert configs == {"static", "servartuka"}

    def test_series_sorted_by_load(self, fig5):
        for label in ("static", "servartuka"):
            loads = [x for x, _ in fig5.series[label]]
            assert loads == sorted(loads)

    def test_dynamic_never_meaningfully_worse(self, fig5):
        static = fig5.measured("static saturation")
        dynamic = fig5.measured("servartuka saturation")
        assert dynamic >= 0.9 * static


class TestFigure8Pipeline:
    def test_runs_and_reports(self):
        figure = figure8_parallel(SMOKE)
        assert figure.measured("static saturation") > 0
        assert figure.measured("servartuka saturation") > 0
        assert figure.series.keys() == {"static", "servartuka"}
