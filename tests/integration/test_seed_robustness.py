"""The headline result must not depend on a lucky seed."""

import pytest

from repro.harness.runner import run_scenario
from repro.sip.timers import TimerPolicy
from repro.workloads.scenarios import ScenarioConfig, two_series

FAST_TIMERS = TimerPolicy(t1=0.05, t2=0.2, t4=0.2)
SEEDS = (3, 101, 4242)


def measure(policy, seed, offered=10000):
    config = ScenarioConfig(
        scale=50.0, seed=seed, noise_sigma=0.30,
        monitor_period=0.5, timers=FAST_TIMERS,
    )
    scenario = two_series(offered, policy=policy, config=config)
    return run_scenario(scenario, duration=5.0, warmup=3.0)


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_gain_positive_for_every_seed(self, seed):
        static = measure("static", seed)
        dynamic = measure("servartuka", seed)
        assert dynamic.throughput_cps > 1.03 * static.throughput_cps, (
            seed, static.throughput_cps, dynamic.throughput_cps,
        )

    def test_measurements_stable_across_seeds_below_knee(self):
        """Below saturation the measurement is tight across seeds; at
        the knee itself the goodput is legitimately noisy (the gain test
        above therefore compares seed-paired runs)."""
        values = [
            measure("servartuka", seed, offered=8000).throughput_cps
            for seed in SEEDS
        ]
        spread = (max(values) - min(values)) / max(values)
        # ~800 Poisson calls per window: the 3-seed range is ~2 standard
        # deviations ~= 7%; anything past 10% would indicate systematic
        # seed sensitivity rather than sampling noise.
        assert spread < 0.10, values
