"""End-to-end behavioural tests of the reproduced system.

These assert the *paper's claims* at test scale (scale factor 50, so
capacities sit around 180-250 sim-cps and each run takes well under a
second): SERvartuka beats the static configurations near saturation,
the system stays stateful for every admitted call, overload reports
flow upstream, and stateful handling bounds response times under loss.
"""

import math

import pytest

from repro.core.servartuka import DELIVER, ServartukaPolicy
from repro.harness.runner import run_scenario
from repro.workloads.callgen import LoadProfile, apply_profile
from repro.workloads.scenarios import (
    ScenarioConfig,
    internal_external,
    single_proxy,
    two_series,
)
from repro.sip.timers import TimerPolicy

FAST_TIMERS = TimerPolicy(t1=0.05, t2=0.2, t4=0.2)


def config(seed=7, **overrides):
    kwargs = dict(
        scale=50.0,
        seed=seed,
        noise_sigma=0.30,
        monitor_period=0.5,
        timers=FAST_TIMERS,
    )
    kwargs.update(overrides)
    return ScenarioConfig(**kwargs)


class TestHeadlineResult:
    """Figure 5 at test scale: dynamic beats static in series."""

    def test_servartuka_beats_static_near_saturation(self):
        offered = 10000  # above static capacity (~8,976), below LP (~10,537)
        static = run_scenario(
            two_series(offered, policy="static", config=config()),
            duration=6.0, warmup=3.0,
        )
        dynamic = run_scenario(
            two_series(offered, policy="servartuka", config=config()),
            duration=6.0, warmup=3.0,
        )
        assert dynamic.throughput_cps > 1.05 * static.throughput_cps
        # And every call the dynamic system *admits* is handled
        # statefully somewhere on the path.
        assert dynamic.stateful_coverage > 0.95

    def test_equal_below_static_capacity(self):
        offered = 6000
        static = run_scenario(
            two_series(offered, policy="static", config=config()),
            duration=4.0, warmup=2.0,
        )
        dynamic = run_scenario(
            two_series(offered, policy="servartuka", config=config()),
            duration=4.0, warmup=2.0,
        )
        assert static.throughput_cps == pytest.approx(offered, rel=0.1)
        assert dynamic.throughput_cps == pytest.approx(offered, rel=0.1)

    def test_static_one_also_beaten(self):
        offered = 10000
        static_one = run_scenario(
            two_series(offered, policy="static-one", config=config()),
            duration=6.0, warmup=3.0,
        )
        dynamic = run_scenario(
            two_series(offered, policy="servartuka", config=config()),
            duration=6.0, warmup=3.0,
        )
        assert dynamic.throughput_cps >= 0.98 * static_one.throughput_cps


class TestStateDelegation:
    def test_state_splits_across_the_chain(self):
        """Above the front node's T_SF it sheds state downstream (eq. 8).

        Uses ``via_overhead=0`` (homogeneous nodes, the paper's
        idealization) so the shedding point sits below system capacity;
        with depth penalties the LP correctly keeps all state at the
        front until the system itself saturates.
        """
        offered = 11000
        scenario = two_series(
            offered, policy="servartuka", config=config(via_overhead=0.0)
        )
        result = run_scenario(scenario, duration=6.0, warmup=3.0)
        sf_p1 = result.proxy_stateful_cps["P1"]
        sf_p2 = result.proxy_stateful_cps["P2"]
        assert sf_p1 > 0 and sf_p2 > offered * 0.05
        # Together they cover (roughly) every admitted call exactly once.
        delivered = result.delivered_cps
        assert sf_p1 + sf_p2 == pytest.approx(delivered, rel=0.15)

    def test_below_t_sf_front_node_keeps_everything(self):
        offered = 6000
        scenario = two_series(offered, policy="servartuka", config=config())
        result = run_scenario(scenario, duration=4.0, warmup=2.0)
        assert result.proxy_stateful_cps["P1"] == pytest.approx(offered, rel=0.1)
        assert result.proxy_stateful_cps["P2"] == pytest.approx(0.0, abs=150)

    def test_no_double_state_for_delegated_calls(self):
        scenario = two_series(10200, policy="servartuka", config=config())
        run_scenario(scenario, duration=6.0, warmup=3.0)
        p2 = scenario.proxies["P2"]
        policy = p2.policy
        assert isinstance(policy, ServartukaPolicy)
        # Calls marked held upstream arrive as FASF at the exit node.
        assert policy.path(DELIVER).last_fasf_rate > 0

    def test_internal_external_delegates_external_only(self):
        offered = 10800
        scenario = internal_external(
            offered, 0.8, policy="servartuka", config=config()
        )
        result = run_scenario(scenario, duration=6.0, warmup=3.0)
        # S2 can only hold state for external calls; internal state must
        # stay at S1 (which also keeps a big stateful share).
        assert result.proxy_stateful_cps["S2"] > 0
        assert result.proxy_stateful_cps["S1"] >= 0.2 * offered * 0.8
        assert result.stateful_coverage > 0.9


class TestOverloadSignalling:
    def test_exit_node_reports_overload_upstream(self):
        """Push the exit node beyond feasibility: reports must flow."""
        offered = 12000
        scenario = two_series(offered, policy="servartuka", config=config())
        run_scenario(scenario, duration=6.0, warmup=3.0)
        p2 = scenario.proxies["P2"]
        p1 = scenario.proxies["P1"]
        assert p2.metrics.counter("overload_reports_sent").value > 0
        assert p1.metrics.counter("overload_reports_received").value > 0
        policy = p1.policy
        assert policy.path("P2").overload.last_sequence >= 0

    def test_saturation_produces_500s(self):
        """Paper: 'a large increase in SIP 500 Server Busy messages'."""
        offered = 14000
        result = run_scenario(
            two_series(offered, policy="static", config=config()),
            duration=5.0, warmup=3.0,
        )
        assert result.server_busy_500 > 0

    def test_saturation_produces_retransmissions(self):
        offered = 14000
        result = run_scenario(
            two_series(offered, policy="static", config=config()),
            duration=5.0, warmup=3.0,
        )
        assert result.retransmissions > 0


class TestResponseTimesUnderLoss:
    """Figure 6's mechanism: stateful proxies absorb retransmissions
    in-network, so the client sees bounded response times."""

    def make_lossy(self, policy):
        scenario = two_series(3000, policy=policy, config=config(seed=21))
        scenario.network.set_link("P1", "P2", loss=0.15)
        return scenario

    def test_stateful_completes_despite_loss(self):
        result = run_scenario(self.make_lossy("static"), duration=6.0, warmup=3.0)
        assert result.goodput_ratio > 0.9

    def test_stateful_quenches_client_retransmissions(self):
        """The 100 Trying from the stateful proxy stops the client's
        Timer A, so in-network loss is recovered by the *proxy's* client
        transaction instead of end-to-end retransmissions -- 'absorbing
        unnecessary retransmissions' (paper section 2.2)."""
        stateful_scenario = self.make_lossy("static")
        stateful = run_scenario(stateful_scenario, duration=6.0, warmup=3.0)
        stateless_scenario = self.make_lossy("stateless")
        stateless = run_scenario(stateless_scenario, duration=6.0, warmup=3.0)
        assert stateless.goodput_ratio > 0.85  # recovery works both ways

        def invite_retransmits(scenario):
            generator = scenario.generators[0]
            return (
                generator.metrics.counter("invites_sent").value
                - generator.calls_attempted
            )

        # The 100 quenches Timer A: INVITE retransmissions vanish when
        # the first proxy is stateful (BYEs still retransmit -- there is
        # no provisional for non-INVITE transactions).
        assert invite_retransmits(stateful_scenario) == 0
        assert invite_retransmits(stateless_scenario) > 0
        # The recovery work moved into the network:
        p1 = stateful_scenario.proxies["P1"]
        assert p1.metrics.counter("downstream_retransmits").value > 0


class TestStatefulnessInvariant:
    @pytest.mark.parametrize("policy", ["static", "static-one", "servartuka"])
    def test_every_call_sees_a_100(self, policy):
        result = run_scenario(
            two_series(7000, policy=policy, config=config()),
            duration=4.0, warmup=2.0,
        )
        assert result.trying_ratio == pytest.approx(1.0, abs=0.02)

    def test_all_stateless_never_sends_100(self):
        result = run_scenario(
            two_series(7000, policy="stateless", config=config()),
            duration=4.0, warmup=2.0,
        )
        assert result.trying_ratio == 0.0


class TestChangingLoad:
    def test_servartuka_adapts_to_a_ramp(self):
        scenario = two_series(
            4000, policy="servartuka", config=config(via_overhead=0.0)
        )
        profile = LoadProfile.staircase(4000, 11200, 3600, step_duration=4.0)
        scaled = LoadProfile(
            [type(step)(step.rate / scenario.config.scale, step.duration)
             for step in profile.steps]
        )
        scenario.start()
        end = apply_profile(scenario.loop, scenario.generators, scaled)
        scenario.loop.run_until(end)
        p1 = scenario.proxies["P1"]
        # During the final (over-T_SF) step the front node must have
        # started forwarding some calls statelessly.
        assert p1.metrics.counter("invites_stateless").value > 0
        assert p1.metrics.counter("invites_stateful").value > 0
        policy = p1.policy
        assert policy.path("P2").myshare != math.inf
