"""Property-based tests on system-level invariants.

Hypothesis drives randomized mini-simulations and checks conservation
laws that must hold regardless of load, topology or seed:

- call conservation: attempted = completed + failed + in-flight,
- statefulness: every admitted call saw a 100 Trying whenever the
  system runs a state-guaranteeing policy,
- message conservation at the UAS: completed <= received <= attempted,
- CPU accounting: busy time never exceeds wall time per node,
- fault injection: conservation survives arbitrary crash/partition/loss
  schedules, dead nodes stay silent, and a (seed, schedule) pair pins
  the entire outcome bit-for-bit.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.runner import run_scenario
from repro.sim.faults import FaultSchedule
from repro.sim.rng import RngStream
from repro.sip.timers import TimerPolicy
from repro.workloads.scenarios import (
    ScenarioConfig,
    n_series,
    parallel_fork,
    single_proxy,
)

FAST_TIMERS = TimerPolicy(t1=0.05, t2=0.2, t4=0.2)

_SLOW = dict(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_config(seed, noise=0.3):
    return ScenarioConfig(
        scale=50.0, seed=seed, noise_sigma=noise,
        monitor_period=0.5, timers=FAST_TIMERS,
    )


class TestCallConservation:
    @settings(**_SLOW)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        load=st.floats(min_value=1000, max_value=12000),
        n=st.integers(min_value=1, max_value=3),
        policy=st.sampled_from(["static", "static-one", "servartuka",
                                "stateless"]),
    )
    def test_every_call_is_accounted_for(self, seed, load, n, policy):
        scenario = n_series(n, load, policy=policy, config=make_config(seed))
        run_scenario(scenario, duration=2.0, warmup=0.5, drain=4.0)
        for generator in scenario.generators:
            attempted = generator.calls_attempted
            completed = generator.calls_completed
            failed = generator.calls_failed
            in_flight = len(generator._calls)
            assert attempted == completed + failed + in_flight
            assert completed >= 0 and failed >= 0

    @settings(**_SLOW)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        load=st.floats(min_value=1000, max_value=9000),
        share=st.floats(min_value=0.2, max_value=0.8),
    )
    def test_fork_call_conservation(self, seed, load, share):
        scenario = parallel_fork(
            load, policy="servartuka", upper_share=share,
            config=make_config(seed),
        )
        run_scenario(scenario, duration=2.0, warmup=0.5, drain=4.0)
        total_received = sum(s.calls_received for s in scenario.servers)
        total_attempted = sum(g.calls_attempted for g in scenario.generators)
        assert total_received <= total_attempted
        for generator in scenario.generators:
            assert generator.calls_attempted == (
                generator.calls_completed + generator.calls_failed
                + len(generator._calls)
            )


class TestStatefulnessInvariant:
    @settings(**_SLOW)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        load=st.floats(min_value=1000, max_value=8000),
        policy=st.sampled_from(["static", "static-one", "servartuka"]),
    )
    def test_admitted_calls_always_covered(self, seed, load, policy):
        """Below saturation every admitted call must be handled
        statefully somewhere (the paper's 100-Trying check)."""
        scenario = n_series(2, load, policy=policy, config=make_config(seed))
        result = run_scenario(scenario, duration=2.0, warmup=1.0)
        if result.failed_calls == 0 and result.invite_rt["count"] > 10:
            assert result.stateful_coverage > 0.97


class TestResourceAccounting:
    @settings(**_SLOW)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        load=st.floats(min_value=2000, max_value=14000),
        mode=st.sampled_from(["stateless", "transaction_stateful",
                              "authentication"]),
    )
    def test_cpu_busy_never_exceeds_wall_clock(self, seed, load, mode):
        scenario = single_proxy(load, mode=mode, config=make_config(seed))
        run_scenario(scenario, duration=2.0, warmup=0.5)
        wall = scenario.loop.now
        for proxy in scenario.proxies.values():
            assert 0.0 <= proxy.cpu.busy_seconds <= wall + 1e-6
            for utilization in proxy.cpu.utilization_series.values:
                assert 0.0 <= utilization <= 1.0

    @settings(**_SLOW)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        load=st.floats(min_value=2000, max_value=8000),
    )
    def test_component_seconds_sum_to_busy_seconds(self, seed, load):
        """Per-component accounting is exact at zero noise."""
        scenario = single_proxy(
            load, mode="transaction_stateful",
            config=make_config(seed, noise=0.0),
        )
        run_scenario(scenario, duration=2.0, warmup=0.5, drain=2.0)
        proxy = scenario.proxies["P1"]
        if proxy.cpu.pending_jobs == 0:
            total_components = sum(proxy.cpu.component_seconds.values())
            assert abs(total_components - proxy.cpu.busy_seconds) < 1e-6


class TestFaultInjection:
    @settings(**_SLOW)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        load=st.floats(min_value=1000, max_value=8000),
        policy=st.sampled_from(["static", "servartuka", "stateless"]),
        crash_time=st.floats(min_value=0.3, max_value=1.5),
        downtime=st.floats(min_value=0.1, max_value=0.6),
        loss=st.floats(min_value=0.0, max_value=0.25),
        cut=st.floats(min_value=0.3, max_value=1.5),
    )
    def test_conservation_under_any_schedule(
        self, seed, load, policy, crash_time, downtime, loss, cut
    ):
        """Crashes, partitions and loss may fail calls but never lose
        the accounting: attempted = completed + failed + in-flight."""
        schedule = (
            FaultSchedule()
            .set_loss(0.0, "uac1", "P1", loss)
            .crash(crash_time, "P1", downtime=downtime)
            .partition(cut, "P1", "P2", duration=0.4)
        )
        scenario = n_series(2, load, policy=policy, config=make_config(seed))
        scenario.install_faults(schedule)
        run_scenario(scenario, duration=2.0, warmup=0.5, drain=4.0)
        assert scenario.faults.crashes == 1
        assert scenario.faults.restarts == 1
        for generator in scenario.generators:
            assert generator.calls_attempted == (
                generator.calls_completed + generator.calls_failed
                + len(generator._calls)
            )

    @settings(**_SLOW)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        load=st.floats(min_value=1000, max_value=8000),
        crash_time=st.floats(min_value=0.3, max_value=1.2),
        downtime=st.floats(min_value=0.2, max_value=0.8),
    )
    def test_dead_nodes_stay_silent(self, seed, load, crash_time, downtime):
        """While a node is down nothing is delivered to it and it sends
        nothing: the ``*_while_dead`` tripwires never fire."""
        schedule = (
            FaultSchedule()
            .crash(crash_time, "P1", downtime=downtime)
            .crash(crash_time + 0.1, "P2", downtime=downtime)
        )
        scenario = n_series(
            2, load, policy="servartuka", config=make_config(seed)
        )
        scenario.install_faults(schedule)
        run_scenario(scenario, duration=2.0, warmup=0.5, drain=4.0)
        for proxy in scenario.proxies.values():
            assert proxy.metrics.counter("activity_while_dead").value == 0
            assert proxy.metrics.counter("sends_while_dead").value == 0
            assert proxy.metrics.counter("crashes").value == 1

    @settings(**_SLOW)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        load=st.floats(min_value=2000, max_value=8000),
        count=st.integers(min_value=1, max_value=3),
    )
    def test_same_seed_and_schedule_identical_outcome(self, seed, load, count):
        """Fault execution draws no run-time randomness, so seed plus
        schedule reproduces every metric and the injector log."""
        outcomes = []
        for _ in range(2):
            schedule = FaultSchedule.random_crashes(
                RngStream(seed, "faults"), ["P1", "P2"], count,
                start=0.3, end=1.6, downtime=0.3,
            )
            scenario = n_series(
                2, load, policy="servartuka", config=make_config(seed)
            )
            scenario.install_faults(schedule)
            result = run_scenario(scenario, duration=2.0, warmup=0.5,
                                  drain=3.0)
            generator = scenario.generators[0]
            outcomes.append((
                result.throughput_cps,
                result.failed_calls,
                result.retransmissions,
                generator.calls_attempted,
                generator.calls_completed,
                tuple(sorted(result.proxy_utilization.items())),
                scenario.faults.render_log(),
            ))
        assert outcomes[0] == outcomes[1]


class TestDeterminism:
    @settings(**_SLOW)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        load=st.floats(min_value=2000, max_value=10000),
    )
    def test_same_seed_same_outcome(self, seed, load):
        results = []
        for _ in range(2):
            scenario = n_series(
                2, load, policy="servartuka", config=make_config(seed)
            )
            result = run_scenario(scenario, duration=1.5, warmup=0.5)
            results.append((
                result.throughput_cps,
                result.failed_calls,
                result.retransmissions,
                tuple(sorted(result.proxy_utilization.items())),
            ))
        assert results[0] == results[1]
