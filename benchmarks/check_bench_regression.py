#!/usr/bin/env python
"""Gate engine-bench performance against the checked-in report.

CI runs ``python -m repro bench --quick ... --json BENCH_new.json`` and
then this script, which fails (exit 1) when any engine rung regressed
by more than ``--tolerance`` (default 15%) relative to the checked-in
``BENCH_engine.json``.

Absolute calls/sec are not comparable across machines (the checked-in
report and the CI runner have different CPUs), so the comparison is
**within-run normalized**: each rung's calls/sec is divided by the same
run's ``copy`` rung (and ``copy`` itself by ``reference``), and only
those machine-independent speedup ratios are compared across reports.
A 20% slowdown injected into a single rung still shifts its own ratio
by 20%, so real regressions are caught; a uniformly slower CI box
shifts nothing.

Only the long-window steady-state scenarios are gated by default: the
resilience campaign's sub-second cells swing well past any usable
tolerance run-to-run (observed ~25%), so gating them would only flake.

When ``--hybrid BENCH_hybrid.json`` is given, the hybrid rung's
contract is gated too: every scenario's ``speedup_hybrid_vs_turbo``
(already a within-run wall-clock ratio, hence machine-independent)
must clear the floor -- >= 5x turbo for full reports per the hybrid
contract, relaxed to 2x for ``quick`` reports whose short runs
amortize fewer jumps -- and the report's recorded max deviation must
sit inside the tolerance band (goodput <= 1%, myshare <= 2 points,
outcomes <= 2%).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

#: Scenarios stable enough to gate (6s+ measurement windows).
DEFAULT_SCENARIOS = ("two_series", "parallel_fig8")

#: The within-run normalization: rung -> denominator rung.
NORMALIZERS = {
    "reference": "copy",
    "fast": "copy",
    "turbo": "copy",
    "copy": "reference",
}


def normalized_ratios(report: dict, scenario: str) -> Dict[str, float]:
    """Each rung's calls/sec relative to its same-run normalizer."""
    per_engine = report["scenarios"][scenario]["per_engine"]
    ratios = {}
    for engine, m in per_engine.items():
        base = NORMALIZERS.get(engine)
        if base is None or base not in per_engine:
            continue
        denominator = float(per_engine[base]["calls_per_sec"])
        if denominator <= 0:
            continue
        ratios[engine] = float(m["calls_per_sec"]) / denominator
    return ratios


def compare(
    baseline: dict,
    candidate: dict,
    tolerance: float = 0.15,
    scenarios=DEFAULT_SCENARIOS,
) -> List[str]:
    """Regression messages (empty when the candidate is acceptable)."""
    failures = []
    for scenario in scenarios:
        if scenario not in baseline.get("scenarios", {}):
            continue  # nothing checked in to compare against
        if scenario not in candidate.get("scenarios", {}):
            failures.append(f"{scenario}: missing from candidate report")
            continue
        base_ratios = normalized_ratios(baseline, scenario)
        cand_ratios = normalized_ratios(candidate, scenario)
        for engine, base_ratio in sorted(base_ratios.items()):
            cand_ratio = cand_ratios.get(engine)
            if cand_ratio is None:
                failures.append(f"{scenario}/{engine}: rung missing from "
                                f"candidate report")
                continue
            floor = base_ratio * (1.0 - tolerance)
            if cand_ratio < floor:
                drop = 1.0 - cand_ratio / base_ratio
                failures.append(
                    f"{scenario}/{engine}: speedup ratio vs "
                    f"{NORMALIZERS[engine]} dropped {drop:.1%} "
                    f"({base_ratio:.3f} -> {cand_ratio:.3f}, "
                    f"tolerance {tolerance:.0%})"
                )
    return failures


#: Hybrid speedup floors by report mode (full reports carry the
#: contract floor; quick runs amortize fewer jumps).
HYBRID_FLOOR_FULL = 5.0
HYBRID_FLOOR_QUICK = 2.0

#: Hybrid tolerance contract on the report's recorded max deviation.
HYBRID_DEVIATION_LIMITS = {
    "goodput_pct": 1.0,
    "myshare_points": 2.0,
    "outcome_pct": 2.0,
}


def check_hybrid(report: dict, floor: float = None) -> List[str]:
    """Failure messages for a BENCH_hybrid.json-shaped report."""
    if floor is None:
        floor = HYBRID_FLOOR_QUICK if report.get("quick") \
            else HYBRID_FLOOR_FULL
    failures = []
    for scenario, entry in sorted(report.get("scenarios", {}).items()):
        speedup = float(entry["speedup_hybrid_vs_turbo"])
        if speedup < floor:
            failures.append(
                f"hybrid/{scenario}: only {speedup:.2f}x over turbo "
                f"(floor {floor:.1f}x)"
            )
        if entry.get("jumps", 0) < 1:
            failures.append(f"hybrid/{scenario}: no jumps fired -- "
                            f"the speedup measures nothing")
        if not entry.get("attempted_exact", False):
            failures.append(f"hybrid/{scenario}: arrival replay "
                            f"diverged from turbo")
    worst = report.get("max_deviation", {})
    for key, limit in HYBRID_DEVIATION_LIMITS.items():
        value = float(worst.get(key, 0.0))
        if value > limit:
            failures.append(
                f"hybrid: max {key} {value} exceeds the tolerance "
                f"contract ({limit})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_engine.json",
                        help="checked-in report (default: BENCH_engine.json)")
    parser.add_argument("--candidate", required=True,
                        help="freshly measured report to gate")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max allowed normalized-ratio drop "
                             "(default: 0.15)")
    parser.add_argument("--scenarios", nargs="*",
                        default=list(DEFAULT_SCENARIOS),
                        help="scenarios to gate "
                             f"(default: {' '.join(DEFAULT_SCENARIOS)})")
    parser.add_argument("--hybrid", default=None,
                        help="hybrid-bench report to gate "
                             "(e.g. BENCH_hybrid.json)")
    parser.add_argument("--hybrid-floor", type=float, default=None,
                        help="min hybrid-vs-turbo speedup (default: "
                             f"{HYBRID_FLOOR_FULL} for full reports, "
                             f"{HYBRID_FLOOR_QUICK} for quick)")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.candidate) as handle:
        candidate = json.load(handle)

    for scenario in args.scenarios:
        if scenario in candidate.get("scenarios", {}):
            ratios = normalized_ratios(candidate, scenario)
            base = (normalized_ratios(baseline, scenario)
                    if scenario in baseline.get("scenarios", {}) else {})
            for engine, ratio in sorted(ratios.items()):
                ref = base.get(engine)
                ref_text = f" (baseline {ref:.3f})" if ref else ""
                print(f"{scenario}/{engine}: ratio vs "
                      f"{NORMALIZERS[engine]} = {ratio:.3f}{ref_text}")

    failures = compare(baseline, candidate, args.tolerance, args.scenarios)
    if args.hybrid:
        with open(args.hybrid) as handle:
            hybrid = json.load(handle)
        for scenario, entry in sorted(hybrid.get("scenarios", {}).items()):
            print(f"hybrid/{scenario}: "
                  f"{entry['speedup_hybrid_vs_turbo']:.2f}x over turbo, "
                  f"{entry['jumps']} jumps")
        failures.extend(check_hybrid(hybrid, args.hybrid_floor))
    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno bench regression (all normalized ratios within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
