"""Figure 3: CPU events per call, by server functionality mode.

Paper values: 362 (stateless, no lookup) / 412 (stateless + lookup) /
707 (transaction stateful) / 803 (dialog stateful) / 983 (+auth).
The model encodes the bar totals exactly; the simulated column recovers
them from per-component CPU accounting at low load.
"""

from repro.harness.figures import figure3_profile


def test_fig3_profile(benchmark, quality, save_figure):
    figure = benchmark.pedantic(
        figure3_profile, args=(quality,), rounds=1, iterations=1
    )
    save_figure(figure, "figure3.txt")

    # The simulated profile must preserve the cost ordering of the five
    # modes and land near the paper's totals.
    measured = {row[0]: row[3] for row in figure.rows}
    order = ["no_lookup", "stateless", "transaction_stateful",
             "dialog_stateful", "authentication"]
    values = [measured[mode] for mode in order]
    assert values == sorted(values), "mode cost ordering broken"
    for row in figure.comparisons:
        assert 0.7 <= row[3] <= 1.3, f"events off by >30%: {row}"
