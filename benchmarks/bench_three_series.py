"""Section 6.1 text result: three servers in series.

Paper values: static 8,780 cps vs SERvartuka 10,180 cps (+16%).
"""

from repro.harness.figures import three_series_text


def test_three_series(benchmark, quality, save_figure):
    figure = benchmark.pedantic(
        three_series_text, args=(quality,), rounds=1, iterations=1
    )
    save_figure(figure, "three_series.txt")

    static = figure.measured("static saturation")
    dynamic = figure.measured("servartuka saturation")
    assert dynamic > static
    gain = dynamic / static - 1.0
    assert 0.04 <= gain <= 0.35, f"gain {gain:.2%} outside plausible band"
    assert 0.8 <= static / 8780 <= 1.2
    assert 0.8 <= dynamic / 10180 <= 1.2
