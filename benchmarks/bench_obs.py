"""Observability overhead gate.

The ``repro.obs`` contract has two halves and this bench measures both
on the fast engine (the regime the contract is written for):

1. **Dormant hooks are free (<= 2%).**  With ``observe=None`` every
   instrumentation point is a single ``is not None`` attribute test.
   Against ``--baseline BENCH_engine.json`` (regenerated on the *same
   host* in the same CI job), the observe-off min-of-N CPU time must be
   within ``--tolerance`` (default 0.02) of the baseline's fast-engine
   ``two_series`` cell.  Without a baseline the timings are reported
   but not gated.
2. **Recorders never feed back.**  The observe-on run's metric
   registries and run observables must be bit-identical to observe-off
   (the same invariant tests/obs/test_observe_differential.py proves on
   small runs, re-checked here at bench load).

The observe-on overhead is also measured at two levels:
``cpu,telemetry`` (the repro.obs recorders proper -- dict work per
job, gated at <= 25%) and ``all`` (which additionally installs the
message trace for spans; trace capture is a pre-existing
:class:`~repro.sim.trace.MessageTrace` cost, so it is reported but
not gated).

Report lands in ``benchmarks/results/BENCH_obs.json`` and the repo
root ``BENCH_obs.json``.  Runnable standalone::

    python benchmarks/bench_obs.py [--full] [--repeats N]
        [--baseline BENCH_engine.json] [--tolerance 0.02]

or as a pytest bench (``pytest benchmarks/bench_obs.py``).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import platform
import time
from typing import Dict, Optional

from repro.harness.bench import BENCH_RATE, _registry_snapshots
from repro.harness.figures import QUICK
from repro.harness.runner import run_scenario
from repro.workloads.scenarios import ScenarioConfig, two_series

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

OBSERVE_ON_CEILING = 1.25


def _cell(observe: Optional[str], quick: bool, repeats: int) -> dict:
    """Min-of-N timing of the bench scenario; also returns the identity
    fingerprint (registries + observables) of the last run."""
    duration, warmup = (6.0, 2.0) if quick else (20.0, 5.0)
    walls, cpus = [], []
    identity: Dict[str, object] = {}
    calls = 0
    for _ in range(repeats):
        config = ScenarioConfig(seed=1, engine="fast", observe=observe)
        scenario = two_series(BENCH_RATE, policy="servartuka", config=config)
        gc.collect()
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        result = run_scenario(scenario, duration=duration, warmup=warmup)
        cpus.append(time.process_time() - cpu_start)
        walls.append(time.perf_counter() - wall_start)
        calls = sum(server.calls_completed for server in scenario.servers)
        identity = {
            "registries": _registry_snapshots(scenario),
            "observables": result.as_dict(),
            "events": scenario.loop.events_processed,
        }
        if observe is not None:
            # Prove the run actually observed something.
            snapshot = scenario.observer.snapshot()
            assert any(
                profile["jobs"] > 0
                for profile in snapshot["profiles"].values()
            ), "observe-on run recorded no profiling data"
    return {
        "measurements": {
            "repeats": repeats,
            "wall_s_min": round(min(walls), 3),
            "cpu_s_min": round(min(cpus), 3),
            "wall_s_all": [round(w, 3) for w in walls],
            "cpu_s_all": [round(c, 3) for c in cpus],
            "calls": calls,
        },
        "identity": identity,
    }


def run_obs_bench(
    quick: bool = True,
    repeats: int = 3,
    baseline_path: Optional[str] = None,
    tolerance: float = 0.02,
) -> dict:
    off = _cell(None, quick, repeats)
    on = _cell("cpu,telemetry", quick, repeats)
    on_all = _cell("all", quick, repeats)

    off_cpu = off["measurements"]["cpu_s_min"]
    on_cpu = on["measurements"]["cpu_s_min"]
    on_all_cpu = on_all["measurements"]["cpu_s_min"]
    report: Dict[str, object] = {
        "benchmark": "obs",
        "quick": quick,
        "scenario": "two_series servartuka @ fast engine",
        "rate_cps": BENCH_RATE,
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "observe_off": off["measurements"],
        "observe_on": on["measurements"],
        "observe_all": on_all["measurements"],
        "observe_on_overhead": round(on_cpu / off_cpu, 4) if off_cpu else 0.0,
        "observe_all_overhead": (
            round(on_all_cpu / off_cpu, 4) if off_cpu else 0.0
        ),
        "identical": (
            on["identity"] == off["identity"]
            and on_all["identity"] == off["identity"]
        ),
        "notes": (
            "observe_off runs with every repro.obs hook dormant (the "
            "default); observe_on attaches the cpu+telemetry recorders "
            "(gated <= 1.25x); observe_all additionally installs the "
            "message trace for spans (pre-existing MessageTrace cost, "
            "reported ungated).  identical asserts every observed run's "
            "metric registries and run observables match observe-off bit "
            "for bit.  The dormant-hook gate compares observe_off "
            "cpu_s_min against a same-host BENCH_engine.json "
            "fast/two_series cell."
        ),
    }

    if baseline_path:
        baseline = json.loads(pathlib.Path(baseline_path).read_text())
        cell = baseline["scenarios"]["two_series"]["per_engine"]["fast"]
        ratio = off_cpu / cell["cpu_s"] if cell["cpu_s"] else 0.0
        report["baseline"] = {
            "path": str(baseline_path),
            "fast_two_series_cpu_s": cell["cpu_s"],
            "observe_off_vs_baseline": round(ratio, 4),
            "tolerance": tolerance,
            "within_tolerance": ratio <= 1.0 + tolerance,
        }
    return report


def write_obs_report(report: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(report, indent=2) + "\n"
    (RESULTS_DIR / "BENCH_obs.json").write_text(text)
    (REPO_ROOT / "BENCH_obs.json").write_text(text)


def _check(report: dict) -> None:
    assert report["identical"], (
        "observe-on run diverged from observe-off in compared metrics"
    )
    assert report["observe_on_overhead"] <= OBSERVE_ON_CEILING, (
        f"observe-on overhead {report['observe_on_overhead']:.3f}x exceeds "
        f"{OBSERVE_ON_CEILING}x"
    )
    baseline = report.get("baseline")
    if baseline is not None:
        assert baseline["within_tolerance"], (
            f"dormant-hook cost {baseline['observe_off_vs_baseline']:.3f}x "
            f"of baseline exceeds 1+{baseline['tolerance']}"
        )


def test_obs_bench(quality):
    report = run_obs_bench(quick=quality is QUICK, repeats=2)
    write_obs_report(report)
    print()
    print(json.dumps(report, indent=2))
    _check(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="full-length windows (default: quick)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="min-of-N repeats per cell (default 3)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="BENCH_engine.json from the same host to gate "
                             "the dormant-hook cost against")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed dormant-hook slowdown vs the baseline "
                             "(default 0.02 = 2%%)")
    args = parser.parse_args(argv)
    report = run_obs_bench(
        quick=not args.full,
        repeats=args.repeats,
        baseline_path=args.baseline,
        tolerance=args.tolerance,
    )
    write_obs_report(report)
    print(json.dumps(report, indent=2))
    _check(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
