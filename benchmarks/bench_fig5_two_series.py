"""Figure 5: two servers in series -- throughput, static vs SERvartuka.

Paper values: the static configuration saturates at 8,540 cps,
SERvartuka at 9,790 cps -- a ~15% improvement.  The reproduction target
is the *shape*: SERvartuka wins by roughly that factor, and the system
stays stateful for every admitted call (trying ratio ~1).
"""

from repro.harness.figures import figure5_two_series


def test_fig5_two_series(benchmark, quality, save_figure):
    figure = benchmark.pedantic(
        figure5_two_series, args=(quality,), rounds=1, iterations=1
    )
    save_figure(figure, "figure5.txt")

    static = figure.measured("static saturation")
    dynamic = figure.measured("servartuka saturation")
    # Who wins, and by roughly the paper's factor (15%; accept 5-30%).
    assert dynamic > static
    gain = dynamic / static - 1.0
    assert 0.05 <= gain <= 0.35, f"gain {gain:.2%} outside the plausible band"
    # Absolute saturation levels within 15% of the paper.
    assert 0.85 <= static / 8540 <= 1.15
    assert 0.85 <= dynamic / 9790 <= 1.15
    # Below saturation the SERvartuka rows keep the statefulness check.
    for row in figure.rows:
        config, offered, throughput, trying = row
        if config == "servartuka" and offered <= 0.9 * dynamic:
            assert trying > 0.95, row
