"""Figure 8: three-server parallel (load balancing) configuration.

Paper values: static (stateless front, stateful forks) 11,990 cps,
SERvartuka 12,830 cps.  The paper itself notes it cannot explain the
SERvartuka advantage here -- analytically the front node is the
bottleneck and the static assignment is already optimal -- so the
reproduction target is *parity or better*: SERvartuka must do no worse
than static (the paper's own worst-case claim), with saturation near
the front node's stateless capacity.
"""

from repro.harness.figures import figure8_parallel


def test_fig8_parallel(benchmark, quality, save_figure):
    figure = benchmark.pedantic(
        figure8_parallel, args=(quality,), rounds=1, iterations=1
    )
    save_figure(figure, "figure8.txt")

    static = figure.measured("static saturation")
    dynamic = figure.measured("servartuka saturation")
    # Worst case for the algorithm: no worse than static (3% noise).
    assert dynamic >= 0.97 * static
    # Both saturate near the paper's static value (the front's T_SL).
    assert 0.85 <= static / 11990 <= 1.15
    # Full statefulness below saturation.
    for row in figure.rows:
        config, offered, _throughput, trying = row
        if offered <= 0.85 * static:
            assert trying > 0.95, row
