"""Engine benchmark: reference vs copy vs fast wall-clock.

Unlike the figure benches (which reproduce paper results), this bench
measures the *simulator itself*: how fast each engine mode chews
through the same workloads, with the differential contract re-verified
on the way.  The machine-readable report lands in
``benchmarks/results/BENCH_engine.json`` (same schema as
``python -m repro bench --json``) and is mirrored to the repo root
``BENCH_engine.json``.
"""

import json
import pathlib

from repro.harness.bench import render_report, run_engine_bench, write_report
from repro.harness.figures import QUICK

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def test_engine_bench(quality):
    report = run_engine_bench(quick=quality is QUICK)

    RESULTS_DIR.mkdir(exist_ok=True)
    write_report(report, str(RESULTS_DIR / "BENCH_engine.json"))
    write_report(report, str(REPO_ROOT / "BENCH_engine.json"))
    text = render_report(report)
    (RESULTS_DIR / "engine.txt").write_text(text + "\n")
    print()
    print(text)

    # The differential contract is a hard requirement; the speedup
    # assertion is deliberately loose (wall-clock on shared CI boxes is
    # noisy) -- the measured number is in the JSON for tracking.
    assert report["identical"], "engines disagree on simulated results"
    for name, entry in report["scenarios"].items():
        assert entry["speedup_fast_vs_reference"] > 1.2, (
            f"{name}: fast engine not meaningfully faster than reference: "
            f"{entry['speedup_fast_vs_reference']}x"
        )
