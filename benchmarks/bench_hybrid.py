"""Hybrid rung benchmark: speedup over turbo AND deviation from turbo.

The hybrid engine's contract has two halves and this bench reports
both, side by side, in ``BENCH_hybrid.json``:

- **speedup** -- wall-clock turbo/hybrid on long steady-state runs
  (within-run ratio, so it transfers across machines).  The ISSUE
  contract floor is >= 5x turbo in full mode; quick mode uses a looser
  floor because shorter runs amortize fewer jumps.
- **max deviation** -- hybrid's simulated results vs the same-seed
  turbo run: goodput within 1%, per-node myshare within 2 points,
  call-outcome counts within 2%.  Arrival counts are RNG-exact
  (``attempted_exact``), so they get an equality flag, not a band.

The report lands in ``benchmarks/results/BENCH_hybrid.json`` and is
mirrored to the repo root ``BENCH_hybrid.json``.
"""

import pathlib

from repro.harness.bench import (
    render_hybrid_report,
    run_hybrid_bench,
    write_report,
)
from repro.harness.figures import QUICK

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def test_hybrid_bench(quality):
    quick = quality is QUICK
    report = run_hybrid_bench(quick=quick)

    RESULTS_DIR.mkdir(exist_ok=True)
    write_report(report, str(RESULTS_DIR / "BENCH_hybrid.json"))
    write_report(report, str(REPO_ROOT / "BENCH_hybrid.json"))
    text = render_hybrid_report(report)
    (RESULTS_DIR / "hybrid.txt").write_text(text + "\n")
    print()
    print(text)

    # Tolerance contract -- hard in both modes.
    worst = report["max_deviation"]
    assert worst["goodput_pct"] <= 1.0, worst
    assert worst["myshare_points"] <= 2.0, worst
    assert worst["outcome_pct"] <= 2.0, worst
    for name, entry in report["scenarios"].items():
        assert entry["attempted_exact"], (
            f"{name}: arrival replay diverged from turbo"
        )
        # Anti-vacuity: a bench run where no jump fired measures
        # nothing -- the whole point is the fast-forwarded regime.
        assert entry["jumps"] >= 1, f"{name}: no jumps fired"
        assert entry["skipped_sim_seconds"] > 0, name

    # Speedup floor.  Full mode enforces the contract floor (>=5x
    # turbo on long steady-state runs); quick mode only sanity-checks
    # direction since short runs amortize fewer jumps and wall-clock
    # on shared CI boxes is noisy.
    floor = 2.0 if quick else 5.0
    for name, entry in report["scenarios"].items():
        assert entry["speedup_hybrid_vs_turbo"] >= floor, (
            f"{name}: hybrid only {entry['speedup_hybrid_vs_turbo']}x "
            f"over turbo (floor {floor}x)"
        )
