"""Section 4.1: the state-distribution LP's worked example.

Paper values: two homogeneous servers in series with T_SF ~= 10,360 and
T_SL ~= 12,300 admit ~11,240 cps when each holds state for ~5,620 cps
-- versus the 10,360 ceiling of any static configuration.
"""

from repro.harness.figures import lp_optima


def test_lp_two_series_optimum(benchmark, quality, save_figure):
    figure = benchmark.pedantic(lp_optima, args=(quality,), rounds=1, iterations=1)
    save_figure(figure, "lp_optima.txt")
    # The LP solve is exact; require sub-1% agreement with the paper.
    assert abs(figure.measured("two-series LP optimum") - 11240) / 11240 < 0.01
    assert abs(figure.measured("per-node stateful share") - 5620) / 5620 < 0.01
