"""Shared fixtures for the benchmark suite.

Every ``bench_fig*.py`` regenerates one table/figure from the paper's
evaluation.  The rendered result is printed and also written to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference the
latest run.

Quality: benches default to the QUICK preset (scale 25, short windows)
so the whole suite finishes in tens of minutes; set
``REPRO_BENCH_QUALITY=standard`` or ``full`` for higher fidelity.
"""

import os
import pathlib

import pytest

from repro.harness.figures import FULL, QUICK, STANDARD
from repro.harness.report import render_figure

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_QUALITIES = {"quick": QUICK, "standard": STANDARD, "full": FULL}


@pytest.fixture(scope="session")
def quality():
    name = os.environ.get("REPRO_BENCH_QUALITY", "quick").lower()
    if name not in _QUALITIES:
        raise ValueError(f"REPRO_BENCH_QUALITY must be one of {sorted(_QUALITIES)}")
    return _QUALITIES[name]


@pytest.fixture
def save_figure():
    """Render a FigureData, print it, and persist it under results/."""

    def _save(figure, filename):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = render_figure(figure)
        (RESULTS_DIR / filename).write_text(text + "\n")
        print()
        print(text)
        return text

    return _save
