"""Figure 4: CPU utilization vs offered load, stateful vs stateless.

Paper values: utilization grows linearly through the origin in both
modes; saturation at ~10,360 cps (transaction stateful) and ~12,300 cps
(stateless), both with lookup.
"""

from repro.harness.figures import figure4_utilization


def test_fig4_utilization(benchmark, quality, save_figure):
    figure = benchmark.pedantic(
        figure4_utilization, args=(quality,), rounds=1, iterations=1
    )
    save_figure(figure, "figure4.txt")

    # Stateless must saturate meaningfully above stateful.
    stateful = figure.measured("stateful saturation cps")
    stateless = figure.measured("stateless saturation cps")
    assert stateless > 1.1 * stateful
    # Both within 15% of the paper's saturation points.
    for row in figure.comparisons:
        assert 0.85 <= row[3] <= 1.15, f"saturation off: {row}"
    # Utilization linear through the origin: at ~half load, ~half busy.
    for mode, series in figure.series.items():
        for offered, utilization in series:
            anchor = stateful if "stateful" in mode else stateless
            predicted = offered / anchor
            if predicted < 0.85:
                assert abs(utilization - predicted) < 0.12, (
                    mode, offered, utilization, predicted,
                )
