"""Parallel-executor benchmark: serial vs pooled vs warm-cache.

Measures the machinery added by ``repro.harness.parallel`` on a
Figure-5-style grid (two-in-series chain, static and SERvartuka
policies, one spec per load point):

- serial baseline (``jobs=1``, cache off),
- the worker ladder at 1/2/4/8 jobs, cold, with scaling efficiency
  ``serial / (wall * jobs)``,
- cold-vs-warm run-cache timing at ``jobs=4``,
- a cross-mode identity check: **every** mode must return the exact
  same result payloads, or the bench fails.

Numbers are honest for the host they ran on: ``host.cpu_count`` is in
the report, and on a single-core box the pool ladder *loses* to serial
(spawn start-up plus contention with no cores to spread over) -- the
speedup criterion only becomes meaningful where ``cpu_count >= jobs``.
The warm-cache criterion (<10% of cold serial) is host-independent.

Report lands in ``benchmarks/results/BENCH_parallel.json`` and is
mirrored to the repo root ``BENCH_parallel.json``.  Runnable both as a
pytest bench (``pytest benchmarks/bench_parallel.py``) and standalone
(``python benchmarks/bench_parallel.py [--quick]``).
"""

import json
import os
import pathlib
import platform
import sys
import tempfile
import time

from repro.harness.parallel import ExecutionContext, SpecTemplate, run_specs
from repro.harness.figures import QUICK
from repro.workloads.scenarios import ScenarioConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

JOB_LADDER = (1, 2, 4, 8)


def _grid(quick: bool):
    """Figure-5-style spec grid: 2-series chain, both policies."""
    if quick:
        scale, duration, warmup, points = 40.0, 3.0, 1.5, 4
    else:
        scale, duration, warmup, points = 10.0, 8.0, 3.0, 6
    config = ScenarioConfig(scale=scale, seed=1)
    loads = [7000.0 + 1000.0 * i for i in range(points)]
    specs = []
    for policy in ("static", "servartuka"):
        template = SpecTemplate(
            "n_series", config, label=f"2-series/{policy}", n=2, policy=policy
        )
        specs.extend(template.at(load, duration, warmup) for load in loads)
    meta = {
        "scenario": "n_series n=2",
        "policies": ["static", "servartuka"],
        "loads": loads,
        "scale": scale,
        "duration": duration,
        "warmup": warmup,
        "specs": len(specs),
    }
    return specs, meta


def _timed_run(specs, **context_kwargs):
    context = ExecutionContext(**context_kwargs)
    start = time.perf_counter()
    results = run_specs(specs, context=context)
    wall = time.perf_counter() - start
    return results, wall, context


def run_parallel_bench(quick: bool = True) -> dict:
    specs, grid_meta = _grid(quick)

    # Serial baseline: inline execution, no cache, no pool.
    serial_results, serial_wall, _ = _timed_run(specs, jobs=1)

    # Worker ladder, cold every rung (fresh context, no cache).
    ladder = {}
    identical = True
    for jobs in JOB_LADDER:
        results, wall, _ = _timed_run(specs, jobs=jobs)
        identical = identical and results == serial_results
        speedup = serial_wall / wall if wall > 0 else 0.0
        ladder[str(jobs)] = {
            "wall_s": round(wall, 3),
            "speedup_vs_serial": round(speedup, 3),
            "efficiency": round(speedup / jobs, 3),
        }

    # Run cache: cold fill then warm replay, both at jobs=4.
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cold_results, cold_wall, _ = _timed_run(
            specs, jobs=4, use_cache=True, cache_dir=cache_dir
        )
        warm_results, warm_wall, warm_context = _timed_run(
            specs, jobs=4, use_cache=True, cache_dir=cache_dir
        )
    identical = identical and cold_results == serial_results
    identical = identical and warm_results == serial_results

    return {
        "benchmark": "parallel",
        "quick": quick,
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "grid": grid_meta,
        "serial_wall_s": round(serial_wall, 3),
        "ladder": ladder,
        "cache": {
            "cold_wall_s": round(cold_wall, 3),
            "warm_wall_s": round(warm_wall, 3),
            "warm_fraction_of_cold_serial": round(
                warm_wall / serial_wall, 4
            ) if serial_wall > 0 else 0.0,
            "warm_hit_rate": round(warm_context.stats.hit_rate(), 4),
        },
        "identical": identical,
        "notes": (
            "serial = inline jobs=1; ladder rungs spawn fresh pools with "
            "no cache; scaling efficiency = speedup/jobs and is only "
            "meaningful where host.cpu_count >= jobs.  identical asserts "
            "every mode returned byte-identical result payloads."
        ),
    }


def write_parallel_report(report: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(report, indent=2) + "\n"
    (RESULTS_DIR / "BENCH_parallel.json").write_text(text)
    (REPO_ROOT / "BENCH_parallel.json").write_text(text)


def _check(report: dict) -> None:
    assert report["identical"], (
        "parallel/cached runs diverged from serial results"
    )
    assert report["cache"]["warm_hit_rate"] == 1.0, report["cache"]
    # Warm cache must be dramatically cheaper than re-simulating.
    assert report["cache"]["warm_fraction_of_cold_serial"] < 0.10, (
        report["cache"]
    )
    # Only judge pool scaling where the host can physically provide it.
    cpus = report["host"]["cpu_count"] or 1
    if cpus >= 4:
        assert report["ladder"]["4"]["speedup_vs_serial"] > 2.0, (
            report["ladder"]
        )


def test_parallel_bench(quality):
    report = run_parallel_bench(quick=quality is QUICK)
    write_parallel_report(report)
    print()
    print(json.dumps(report, indent=2))
    _check(report)


if __name__ == "__main__":
    quick = "--full" not in sys.argv
    report = run_parallel_bench(quick=quick)
    write_parallel_report(report)
    print(json.dumps(report, indent=2))
    _check(report)
