"""Figure 7: maximal throughput vs external/internal load mix.

Paper values: SERvartuka >= static at every mix; the gain peaks near an
80/20 external/internal split (paper: 9,540 vs 11,410 cps, LP bound
11,960).  Our static baseline (both proxies statically stateful, the
deployed default) is stronger than the paper's measurement, so the
absolute gain is smaller, but the shape -- interior peak, SERvartuka
tracking the LP bound -- reproduces.
"""

from repro.harness.figures import figure7_changing_load


def test_fig7_changing_load(benchmark, quality, save_figure):
    figure = benchmark.pedantic(
        figure7_changing_load, args=(quality,), rounds=1, iterations=1
    )
    save_figure(figure, "figure7.txt")

    rows = {row[0]: row for row in figure.rows}  # fraction -> row

    # SERvartuka never loses to static (allow 3% measurement noise).
    for fraction, row in rows.items():
        _f, static, dynamic, lp, _gain = row
        assert dynamic >= 0.97 * static, row
        # Neither exceeds the LP bound by more than noise.
        assert dynamic <= lp * 1.08, row

    # Once delegation is possible (external traffic exists) the gain is
    # strictly positive, while the degenerate single-server mix (f=0)
    # shows none -- the figure's core message.
    gain_at_zero = rows[0.0][4] if 0.0 in rows else 1.0
    delegable_gains = [row[4] for f, row in rows.items() if f >= 0.5]
    assert delegable_gains and min(delegable_gains) > gain_at_zero
    assert max(delegable_gains) >= 1.04

    # The 80/20 mix is at (or within noise of) the best gain; paper puts
    # the peak exactly there, our static baseline shifts it slightly.
    if 0.8 in rows:
        best_gain = max(row[4] for row in rows.values())
        assert rows[0.8][4] >= 0.97 * best_gain

    # At the 0.8 mix SERvartuka lands near the paper's measured value.
    if 0.8 in rows:
        assert 0.85 <= rows[0.8][2] / 11410 <= 1.15
