"""Extension: distributing the authentication function (section 6.2).

The paper remarks that "we have seen significantly larger improvements
when we tried distributing authentication".  We compare three
arrangements of a two-proxy chain with digest authentication:

- **A** conventional: every node statically stateful, the entry proxy
  authenticates every call;
- **B** SERvartuka state distribution, entry-pinned authentication;
- **C** SERvartuka distributing *both* state and authentication
  (a second policy instance with ``resource="auth"``).

Under our cost model the dynamic arrangements (B, C) clearly beat the
static one, while C ~ B at the peak: the exit node, not the auth-pinned
entry, is the capacity bottleneck of this chain, so moving auth
downstream only pays off when the *entry* node is the constraint (e.g.
the 10,200-cps point in ``examples/authenticated_trunk.py``).  The
paper's "significantly larger improvements" claim likely reflects a
testbed where the authenticating node was the bottleneck.
"""

from repro.harness.figures import FigureData
from repro.harness.runner import run_scenario
from repro.harness.saturation import find_capacity
from repro.workloads.scenarios import n_series

CONFIGS = (
    ("A static + entry auth", dict(policy="static", auth="entry")),
    ("B servartuka + entry auth", dict(policy="servartuka", auth="entry")),
    ("C servartuka + distributed auth",
     dict(policy="servartuka", auth="distributed")),
)


def test_auth_distribution(benchmark, quality, save_figure):
    def run():
        rows = []
        capacities = {}
        past_knee = {}
        for label, kwargs in CONFIGS:
            def factory(load, kw=kwargs):
                return n_series(2, load, config=quality.scenario_config(), **kw)

            sweep = find_capacity(
                factory, hint=9200, duration=quality.duration,
                warmup=quality.warmup, points=max(3, quality.sweep_points - 1),
                span=0.3,
            )
            capacities[label] = sweep.max_throughput
            # Probe robustness 15% beyond the measured capacity.
            beyond = run_scenario(
                factory(1.15 * sweep.max_throughput),
                duration=quality.duration, warmup=quality.warmup,
            )
            past_knee[label] = beyond.throughput_cps
            rows.append([
                label, round(capacities[label]), round(past_knee[label]),
            ])
        return FigureData(
            "Extension: authentication distribution",
            "Two-series with digest auth: capacity and post-knee goodput",
            ["configuration", "capacity_cps", "goodput_at_1.15x_cps"],
            rows,
            description=__doc__.strip(),
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    save_figure(figure, "auth_distribution.txt")

    values = {row[0]: (row[1], row[2]) for row in figure.rows}
    cap_a, _ = values["A static + entry auth"]
    cap_b, past_b = values["B servartuka + entry auth"]
    cap_c, past_c = values["C servartuka + distributed auth"]
    # Dynamic state distribution beats the static arrangement.
    assert cap_b > cap_a
    # Adding auth distribution does not lose meaningful capacity, and
    # past the knee both dynamic arrangements stay in the same band
    # (post-saturation goodput is noisy; 20% tolerance).
    assert cap_c >= 0.95 * cap_b
    assert past_c >= 0.80 * past_b
