"""Optimality-gap benchmark: Algorithm 2 vs the LP oracle at scale.

Runs the full ``optgap`` grid (``repro.harness.optgap``): generated
chain / tree / mesh topologies, each offered exactly its LP-optimal
load ``T*`` (pure-python simplex oracle) and simulated under the
distributed SERvartuka policy.  The report is the BENCH-style payload
from :func:`repro.harness.optgap.optgap_payload` plus host/timing
metadata, with hard criteria:

- every gap lies in ``[0, 1]`` (clamped by construction, re-asserted
  on the emitted rows),
- rows are sorted by (family, proxies, heterogeneity),
- the grid exercises a >= 50-proxy mesh end to end,
- every comparison row stays inside its soft budget
  (``measured/budget <= 1``).

Report lands in ``benchmarks/results/BENCH_optgap.json`` and is
mirrored to the repo root ``BENCH_optgap.json``.  Runnable both as a
pytest bench (``pytest benchmarks/bench_optgap.py``) and standalone
(``python benchmarks/bench_optgap.py [--full] [--jobs N]``).
"""

import json
import os
import pathlib
import platform
import sys
import time

from repro.harness.figures import FULL, QUICK
from repro.harness.optgap import optgap_figure, optgap_grid, optgap_payload
from repro.harness.parallel import execution

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

#: The turbo engine is bit-identical to the reference engine (see
#: tests/engine/test_differential.py) and the only rung that makes the
#: 50+ proxy cells affordable in a benchmark loop.
BENCH_ENGINE = "turbo"


def run_optgap_bench(quick: bool = True, jobs: int = 2) -> dict:
    quality = (QUICK if quick else FULL).with_overrides(engine=BENCH_ENGINE)
    start = time.perf_counter()
    with execution(jobs=jobs):
        figure = optgap_figure(quality)
    wall = time.perf_counter() - start
    report = {
        "benchmark": "optgap",
        "quick": quick,
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "quality": quality.name,
        "engine": BENCH_ENGINE,
        "jobs": jobs,
        "cells": len(optgap_grid(quality)),
        "wall_s": round(wall, 3),
    }
    report.update(optgap_payload(figure))
    report["notes"] = (
        "gap = 1 - goodput/T* per generated topology; comparisons are "
        "soft budgets (measured/budget must stay <= 1), not paper "
        "values -- the paper stops at 2-3 node topologies."
    )
    return report


def write_optgap_report(report: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(report, indent=2) + "\n"
    (RESULTS_DIR / "BENCH_optgap.json").write_text(text)
    (REPO_ROOT / "BENCH_optgap.json").write_text(text)


def _check(report: dict) -> None:
    rows = report["rows"]
    assert rows, "optgap grid produced no rows"
    keys = [(row[0], row[1], row[2]) for row in rows]
    assert keys == sorted(keys), "rows not sorted by (family, proxies, het)"
    assert all(0.0 <= row[5] <= 1.0 for row in rows), rows
    assert any(row[1] >= 50 for row in rows), (
        "grid never exercised a >= 50-proxy topology"
    )
    for label, budget, measured, ratio in report["comparisons"]:
        assert ratio <= 1.0, (label, budget, measured)


def test_optgap_bench(quality):
    report = run_optgap_bench(quick=quality is QUICK)
    write_optgap_report(report)
    print()
    print(json.dumps(report, indent=2))
    _check(report)


if __name__ == "__main__":
    jobs = 2
    if "--jobs" in sys.argv:
        jobs = int(sys.argv[sys.argv.index("--jobs") + 1])
    report = run_optgap_bench(quick="--full" not in sys.argv, jobs=jobs)
    write_optgap_report(report)
    print(json.dumps(report, indent=2))
    _check(report)
