"""Figure 6: two servers in series -- response times.

Paper values: the stateful configuration bounds INVITE response times
under ~200 ms up to its (lower) saturation point; the stateless one
stays low until ~12,300 cps and then spikes; SERvartuka tracks the
stateful bound while saturating higher.
"""

from repro.harness.figures import figure6_response_times


def test_fig6_response_times(benchmark, quality, save_figure):
    figure = benchmark.pedantic(
        figure6_response_times, args=(quality,), rounds=1, iterations=1
    )
    save_figure(figure, "figure6.txt")

    # Build per-config series: offered -> p95 (ms).
    series = {}
    peak = {}
    for config, offered, mean_ms, p95_ms, _retr in figure.rows:
        series.setdefault(config, []).append((offered, p95_ms))

    for config, rows in series.items():
        rows.sort()
        # Throughput info comes from the sweep; approximate each
        # config's knee as the load where p95 explodes.
        peak[config] = rows

    # Below ~8,000 cps every configuration responds in a few ms.
    for config, rows in series.items():
        low_load = [p95 for offered, p95 in rows if offered < 7000]
        assert low_load and max(low_load) < 50, (config, low_load)

    # The stateful and SERvartuka configs stay bounded (<200 ms, the
    # paper's bound) up to the static saturation region.
    for config in ("stateful", "servartuka"):
        bounded = [p95 for offered, p95 in series[config] if offered <= 8200]
        assert max(bounded) < 200, (config, bounded)

    # Past its knee the all-stateless system shows clearly inflated
    # response times relative to its own low-load baseline.
    stateless = series["stateless"]
    low = max(p95 for offered, p95 in stateless if offered < 7000)
    high = max(p95 for offered, p95 in stateless)
    assert high > 4 * max(low, 1.0)
