"""Ablations over the design choices DESIGN.md calls out.

Not paper figures -- these probe the knobs of the reproduction itself:

- static placement: all-stateful (case i) vs single-stateful (case ii),
- SERvartuka monitoring period,
- planning headroom,
- Via-size overhead (the mechanism behind chain-depth capacity loss),
- non-homogeneous parallel fork (section 6.2's discussion: a strong
  front with weak forks should keep state at the front).
"""

import pytest

from repro.harness.figures import FigureData, chain_node_thresholds
from repro.harness.runner import run_scenario
from repro.harness.saturation import find_capacity
from repro.workloads.scenarios import (
    ScenarioConfig,
    ServartukaConfig,
    n_series,
    parallel_fork,
    two_series,
)


def _capacity(factory, hint, quality):
    sweep = find_capacity(
        factory, hint=hint, duration=quality.duration, warmup=quality.warmup,
        points=max(3, quality.sweep_points - 1), span=0.3,
    )
    return sweep.max_throughput


class TestStaticPlacement:
    def test_static_placement_variants(self, benchmark, quality, save_figure):
        def run():
            rows = []
            for label, kwargs in (
                ("all-stateful (case i)", dict(policy="static")),
                ("exit stateful (case ii)", dict(policy="static-one")),
                ("entry stateful", dict(policy="static-one", static_stateful="P1")),
                ("servartuka", dict(policy="servartuka")),
            ):
                def factory(load, kw=kwargs):
                    return two_series(load, config=quality.scenario_config(), **kw)
                capacity = _capacity(factory, hint=9500, quality=quality)
                rows.append([label, round(capacity)])
            return FigureData(
                "Ablation: static placement",
                "Two-series capacity by state placement",
                ["configuration", "capacity_cps"],
                rows,
                description=(
                    "Which node(s) statically hold state matters: the exit "
                    "node is the weakest (deepest Via stack), so pinning "
                    "state there or everywhere gives the paper's ~8.5-9k "
                    "plateau; entry-stateful does better; SERvartuka finds "
                    "the best placement automatically."
                ),
            )

        figure = benchmark.pedantic(run, rounds=1, iterations=1)
        save_figure(figure, "ablation_static_placement.txt")
        values = {row[0]: row[1] for row in figure.rows}
        assert values["servartuka"] >= values["all-stateful (case i)"]
        assert values["entry stateful"] >= values["exit stateful (case ii)"] * 0.97


class TestMonitoringPeriod:
    def test_period_sensitivity(self, benchmark, quality, save_figure):
        offered = 10200  # above static capacity, below the LP bound

        def run():
            rows = []
            for period in (0.25, 1.0, 4.0):
                config = quality.scenario_config(
                    monitor_period=period,
                    servartuka=ServartukaConfig(period=period),
                )
                result = run_scenario(
                    two_series(offered, policy="servartuka", config=config),
                    duration=max(quality.duration, 6 * period),
                    warmup=max(quality.warmup, 2 * period),
                )
                rows.append([
                    period, round(result.throughput_cps),
                    round(result.stateful_coverage, 3), result.server_busy_500,
                ])
            return FigureData(
                "Ablation: monitoring period",
                "SERvartuka throughput vs Algorithm 2 period (offered 10,200)",
                ["period_s", "throughput_cps", "stateful_coverage", "busy_500"],
                rows,
                description=(
                    "Algorithm 2's recomputation period trades reaction "
                    "speed against measurement noise; throughput is flat "
                    "across an order of magnitude, showing the algorithm "
                    "is not tuned to one cadence."
                ),
            )

        figure = benchmark.pedantic(run, rounds=1, iterations=1)
        save_figure(figure, "ablation_period.txt")
        throughputs = [row[1] for row in figure.rows]
        assert max(throughputs) < 1.35 * min(throughputs)


class TestHeadroom:
    def test_headroom_tradeoff(self, benchmark, quality, save_figure):
        offered = 10200

        def run():
            rows = []
            for headroom in (1.0, 0.92, 0.85):
                config = quality.scenario_config(
                    servartuka=ServartukaConfig(headroom=headroom),
                )
                result = run_scenario(
                    two_series(offered, policy="servartuka", config=config),
                    duration=quality.duration, warmup=quality.warmup,
                )
                rows.append([
                    headroom, round(result.throughput_cps),
                    result.server_busy_500, result.retransmissions,
                ])
            return FigureData(
                "Ablation: planning headroom",
                "Throughput vs feasibility headroom (offered 10,200)",
                ["headroom", "throughput_cps", "busy_500", "retransmissions"],
                rows,
                description=(
                    "Planning to exactly 100% utilization (headroom 1.0, "
                    "the paper's equation 8) maximizes throughput but "
                    "rides the overload edge; backing off trades a few "
                    "percent of capacity for fewer 500s/retransmissions."
                ),
            )

        figure = benchmark.pedantic(run, rounds=1, iterations=1)
        save_figure(figure, "ablation_headroom.txt")
        assert len(figure.rows) == 3


class TestViaOverhead:
    def test_depth_penalty_mechanism(self, benchmark, quality, save_figure):
        def run():
            rows = []
            for overhead in (0.0, 0.2, 0.4):
                config = quality.scenario_config(via_overhead=overhead)
                thresholds = chain_node_thresholds(config.make_cost_model(), 2)

                def factory(load, c=config):
                    return two_series(load, policy="static", config=c)

                capacity = _capacity(
                    factory, hint=min(t for t, _ in thresholds), quality=quality
                )
                rows.append([
                    overhead,
                    round(thresholds[1][0]),  # exit node T_SF
                    round(capacity),
                ])
            return FigureData(
                "Ablation: Via-size overhead",
                "Static two-series capacity vs per-Via parsing overhead",
                ["via_overhead", "exit_t_sf_cps", "measured_capacity_cps"],
                rows,
                description=(
                    "The per-Via parsing/memory overhead is what makes a "
                    "chained static deployment saturate below a single "
                    "stateful server (paper: 8,540 vs ~10,360 cps).  With "
                    "the overhead off, the chain saturates at T_SF itself."
                ),
            )

        figure = benchmark.pedantic(run, rounds=1, iterations=1)
        save_figure(figure, "ablation_via_overhead.txt")
        capacities = [row[2] for row in figure.rows]
        assert capacities[0] > capacities[1] > capacities[2]


class TestNonHomogeneousFork:
    def test_weak_forks_favor_front_state(self, benchmark, quality, save_figure):
        """Section 6.2: 'if the first server has much larger capacity
        than the two downstream paths then it might be beneficial for it
        to maintain some state or even all state'."""

        def run():
            rows = []
            # Heterogeneity is emulated with an uneven split: pushing 85%
            # of the load down one fork stresses it exactly like a weak
            # fork node would be.
            for label, kwargs in (
                ("static, even split", dict(policy="static", upper_share=0.5)),
                ("static, 85/15 split", dict(policy="static", upper_share=0.85)),
                ("static front-stateful, 85/15",
                 dict(policy="static", upper_share=0.85,
                      static_front_stateful=True)),
                ("servartuka, 85/15", dict(policy="servartuka", upper_share=0.85)),
            ):
                def factory(load, kw=kwargs):
                    return parallel_fork(
                        load, config=quality.scenario_config(), **kw
                    )
                capacity = _capacity(factory, hint=10500, quality=quality)
                rows.append([label, round(capacity)])
            return FigureData(
                "Ablation: uneven parallel fork",
                "Fork capacity under skewed load splits",
                ["configuration", "capacity_cps"],
                rows,
                description=(
                    "With an 85/15 split the hot fork saturates early if "
                    "it must hold all state; SERvartuka matches or beats "
                    "the best static assignment without knowing the split."
                ),
            )

        figure = benchmark.pedantic(run, rounds=1, iterations=1)
        save_figure(figure, "ablation_fork.txt")
        values = {row[0]: row[1] for row in figure.rows}
        best_static_uneven = max(
            values["static, 85/15 split"],
            values["static front-stateful, 85/15"],
        )
        assert values["servartuka, 85/15"] >= 0.93 * best_static_uneven
