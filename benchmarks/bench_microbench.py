"""Microbenchmarks of the library's hot paths.

Unlike the figure benches (one long run each), these use real
pytest-benchmark rounds and measure the building blocks a downstream
user would care about: wire parsing, message serialization, the LP
solver, transaction machinery and raw simulator throughput.
"""

from repro.core.lp import FlowPathLP, StateDistributionLP
from repro.core.costmodel import CostModel, Feature, MessageKind, scenario_features
from repro.core.topology import parallel_fork_topology, two_series_topology
from repro.harness.runner import run_scenario
from repro.sim.cpu import CpuModel
from repro.sim.events import EventLoop
from repro.sim.rng import RngStream
from repro.sip.headers import Via
from repro.sip.message import SipRequest, SipResponse
from repro.sip.parser import parse_message
from repro.sip.timers import TimerPolicy
from repro.sip.transaction import ClientTransaction, ServerTransaction
from repro.workloads.scenarios import ScenarioConfig, two_series

RAW_INVITE = (
    "INVITE sip:burdell@cc.gatech.edu SIP/2.0\r\n"
    "Via: SIP/2.0/UDP p2.example.com;branch=z9hG4bK3\r\n"
    "Via: SIP/2.0/UDP p1.example.com;branch=z9hG4bK2\r\n"
    "Via: SIP/2.0/UDP uac.example.com;branch=z9hG4bK1\r\n"
    "Record-Route: <sip:p2.example.com;lr>\r\n"
    "Record-Route: <sip:p1.example.com;lr>\r\n"
    "From: \"Hal\" <sip:hal@us.ibm.com>;tag=a1\r\n"
    "To: <sip:burdell@cc.gatech.edu>\r\n"
    "Call-ID: abc123@uac.example.com\r\n"
    "CSeq: 1 INVITE\r\n"
    "Contact: <sip:hal@uac.example.com>\r\n"
    "Max-Forwards: 68\r\n"
    "Content-Length: 0\r\n\r\n"
)


def test_parse_invite(benchmark):
    message = benchmark(parse_message, RAW_INVITE)
    assert message.method == "INVITE"


def test_serialize_invite(benchmark):
    message = parse_message(RAW_INVITE)
    wire = benchmark(message.to_wire)
    assert wire.startswith("INVITE")


def test_transaction_key(benchmark):
    message = parse_message(RAW_INVITE)

    def key():
        message._cache.clear()  # force the lazy parse each round
        return message.transaction_key()

    assert benchmark(key)[2] == "INVITE"


def test_message_cost_lookup(benchmark):
    model = CostModel()
    features = scenario_features("transaction_stateful")
    cost, _ = benchmark(model.message_cost, MessageKind.INVITE, features, 1)
    assert cost > 0


def test_lp_two_series(benchmark):
    topology = two_series_topology(10360, 12300)
    solution = benchmark(lambda: StateDistributionLP(topology).solve())
    assert solution.throughput > 11000


def test_lp_fork_fixed_routing(benchmark):
    topology = parallel_fork_topology(
        (10360, 12300), (10360, 12300), (10360, 12300)
    )
    solution = benchmark(lambda: FlowPathLP(topology).solve())
    assert solution.throughput > 12000


def test_client_transaction_lifecycle(benchmark):
    timers = TimerPolicy(t1=0.05, t2=0.2, t4=0.2)

    def lifecycle():
        loop = EventLoop()
        request = SipRequest.build(
            "INVITE", "sip:u@x.com", "sip:a@y.com", "sip:u@x.com", "c", 1, "ft"
        )
        request.push_via(Via("uac", branch="z9hG4bKb"))
        seen = []
        txn = ClientTransaction(
            request, loop, send_fn=lambda m: None,
            on_response=seen.append, on_timeout=lambda: None, timers=timers,
        )
        txn.start()
        txn.receive_response(SipResponse.for_request(request, 180, to_tag="t"))
        txn.receive_response(SipResponse.for_request(request, 200, to_tag="t"))
        loop.run()
        return len(seen)

    assert benchmark(lifecycle) == 2


def test_event_loop_throughput(benchmark):
    def drain():
        loop = EventLoop()
        for index in range(5000):
            loop.schedule(index * 1e-6, lambda: None)
        return loop.run()

    assert benchmark(drain) == 5000


def test_cpu_model_throughput(benchmark):
    def churn():
        loop = EventLoop()
        cpu = CpuModel(loop, RngStream(1, "bench"), noise_sigma=0.3)
        for _ in range(2000):
            cpu.submit(1e-5, lambda: None)
        loop.run()
        return cpu.jobs_completed

    assert benchmark(churn) == 2000


def test_simulated_call_throughput(benchmark):
    """End-to-end simulator speed: calls simulated per wall second."""
    config = ScenarioConfig(scale=25.0, seed=3)

    def run():
        scenario = two_series(6000, policy="servartuka", config=config)
        result = run_scenario(scenario, duration=3.0, warmup=1.0)
        return result.throughput_cps

    assert benchmark(run) > 4000
